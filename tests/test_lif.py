"""Unit tests for the LIF grid-search synthesis (Section 3.1)."""

import numpy as np
import pytest

from repro.core import RMIConfig, default_grid, evaluate_config, synthesize
from repro.core.config import root_factory
from repro.models import LinearModel


class TestRootFactory:
    def test_linear(self):
        assert isinstance(root_factory("linear")(), LinearModel)

    def test_nn_zero_hidden_is_linear(self):
        assert isinstance(root_factory("nn", hidden=())(), LinearModel)

    def test_nn_with_hidden(self):
        model = root_factory("nn", hidden=(4,), epochs=1)()
        assert model.net.hidden == (4,)

    def test_multivariate(self):
        model = root_factory("multivariate", features=("key", "log"))()
        assert model.features == ("key", "log")

    def test_unknown(self):
        with pytest.raises(ValueError):
            root_factory("quantum")


class TestRMIConfig:
    def test_describe(self):
        assert "linear" in RMIConfig().describe()
        nn = RMIConfig(root_kind="nn", root_hidden=(8, 8), num_leaves=10)
        assert "nn8x8" in nn.describe()

    def test_factories_shape(self):
        factories = RMIConfig(num_leaves=5).factories()
        assert len(factories) == 2


class TestDefaultGrid:
    def test_scales_leaf_counts(self):
        grid = default_grid(100_000, include_nn=False)
        leaf_counts = {c.num_leaves for c in grid}
        assert len(leaf_counts) >= 2
        assert max(leaf_counts) <= 100_000

    def test_includes_nn_when_asked(self):
        grid = default_grid(10_000, include_nn=True)
        assert any(c.root_kind == "nn" for c in grid)

    def test_explicit_leaf_counts(self):
        grid = default_grid(1_000, leaf_counts=(4, 8), include_nn=False)
        assert {c.num_leaves for c in grid} == {4, 8}


class TestEvaluateAndSynthesize:
    def test_evaluate_config(self, uniform_small):
        index, result = evaluate_config(
            uniform_small, RMIConfig(num_leaves=32), query_sample=200
        )
        assert result.lookup_ns > 0
        assert result.size_bytes == index.size_bytes()
        assert result.build_seconds > 0

    def test_synthesize_picks_valid_winner(self, lognormal_small):
        grid = [
            RMIConfig(num_leaves=8),
            RMIConfig(num_leaves=64),
            RMIConfig(
                root_kind="multivariate",
                root_features=("key", "log"),
                num_leaves=64,
            ),
        ]
        index, best, results = synthesize(
            lognormal_small, grid=grid, query_sample=200
        )
        assert len(results) == len(grid)
        assert best.lookup_ns == min(r.lookup_ns for r in results)
        q = float(lognormal_small[123])
        assert index.lookup(q) == 123

    def test_size_budget_filters(self, uniform_small):
        grid = [RMIConfig(num_leaves=8), RMIConfig(num_leaves=2000)]
        _index, best, _results = synthesize(
            uniform_small, grid=grid, size_budget_bytes=2_000, query_sample=100
        )
        assert best.size_bytes <= 2_000

    def test_impossible_budget_raises(self, uniform_small):
        with pytest.raises(ValueError, match="size budget"):
            synthesize(
                uniform_small,
                grid=[RMIConfig(num_leaves=2000)],
                size_budget_bytes=10,
                query_sample=50,
            )

    def test_train_sample_path(self, uniform_small):
        index, best, _ = synthesize(
            uniform_small,
            grid=[RMIConfig(num_leaves=16)],
            train_sample=1_000,
            query_sample=100,
        )
        # winner must be retrained on the full keys
        assert index.keys.size == uniform_small.size
        probe = float(uniform_small[42])
        assert index.lookup(probe) == 42

    def test_empty_grid(self, uniform_small):
        with pytest.raises(ValueError):
            synthesize(uniform_small, grid=[])
