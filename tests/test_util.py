"""Unit tests for shared utilities."""

import numpy as np

from repro.util import scalar_view


class TestScalarView:
    def test_int64_memoryview(self):
        keys = np.array([1, 2, 3], dtype=np.int64)
        view = scalar_view(keys)
        assert isinstance(view, memoryview)
        assert view[1] == 2
        assert isinstance(view[1], int)

    def test_float64_memoryview(self):
        keys = np.array([1.5, 2.5])
        view = scalar_view(keys)
        assert view[0] == 1.5
        assert isinstance(view[0], float)

    def test_zero_copy(self):
        keys = np.array([1, 2, 3], dtype=np.int64)
        view = scalar_view(keys)
        keys[0] = 99
        assert view[0] == 99

    def test_non_contiguous_falls_back(self):
        keys = np.arange(10, dtype=np.int64)[::2]
        view = scalar_view(keys)
        assert list(view) == [0, 2, 4, 6, 8]

    def test_lists_pass_through(self):
        data = ["a", "b"]
        assert scalar_view(data) is data

    def test_generic_iterable(self):
        assert scalar_view(range(3)) == [0, 1, 2]
