"""Unit tests for the weblog timestamp simulator."""

import numpy as np
import pytest

from repro.data.weblogs import (
    _SECONDS_PER_DAY,
    PAPER_TICKS_PER_KEY,
    RateModel,
    weblog_timestamps,
)


class TestRateModel:
    def setup_method(self):
        self.model = RateModel(seed=3)

    def test_daily_peak_versus_night(self):
        ten_thirty = np.array([10.5 * 3600.0])
        three_am = np.array([3.0 * 3600.0])
        assert self.model.daily_factor(ten_thirty) > 5 * self.model.daily_factor(
            three_am
        )

    def test_lunch_dip(self):
        lunch = np.array([12.5 * 3600.0])
        eleven = np.array([11.0 * 3600.0])
        assert self.model.daily_factor(lunch) < self.model.daily_factor(eleven)

    def test_weekend_drop(self):
        weekday = self.model.weekly_factor(np.array([2]))
        weekend = self.model.weekly_factor(np.array([6]))
        assert weekday > 4 * weekend

    def test_semester_break_drop(self):
        term_day = self.model.semester_factor(np.array([80]))
        break_day = self.model.semester_factor(np.array([200]))
        assert term_day > 5 * break_day

    def test_exam_period_exceeds_midterm(self):
        exam = self.model.semester_factor(np.array([130]))
        midterm = self.model.semester_factor(np.array([80]))
        assert exam > midterm

    def test_holiday_drop(self):
        holiday = self.model._holiday_days[0]
        non_holiday = (holiday + 1) % 365
        while non_holiday in self.model._holiday_days:
            non_holiday = (non_holiday + 1) % 365
        assert self.model.holiday_factor(np.array([holiday])) < 0.1
        assert self.model.holiday_factor(np.array([non_holiday])) == 1.0

    def test_event_bursts_raise_rate(self):
        t0 = self.model._event_times[0]
        near = self.model.event_factor(np.array([t0]))
        far = self.model.event_factor(np.array([t0 + 50 * _SECONDS_PER_DAY]))
        assert near > far

    def test_rate_positive_everywhere(self):
        t = np.linspace(0, 2 * 365 * _SECONDS_PER_DAY, 10_000)
        rate = self.model.rate(t)
        assert np.all(rate > 0)


class TestWeblogTimestamps:
    def test_canonical_layout(self):
        keys = weblog_timestamps(5_000, seed=1)
        assert keys.dtype == np.int64
        assert keys.size == 5_000
        assert np.all(np.diff(keys) > 0)

    def test_deterministic(self):
        np.testing.assert_array_equal(
            weblog_timestamps(2_000, seed=9), weblog_timestamps(2_000, seed=9)
        )

    def test_density_matches_calibration(self):
        n = 20_000
        keys = weblog_timestamps(n, seed=1)
        span = keys.max() - keys.min()
        ticks_per_key = span / n
        assert ticks_per_key == pytest.approx(PAPER_TICKS_PER_KEY, rel=0.35)

    def test_explicit_resolution(self):
        keys = weblog_timestamps(2_000, seed=1, resolution=1000)
        # millisecond ticks over 2 years => huge key space, sparse keys
        assert keys.max() > 10**9

    def test_irregular_cdf(self):
        # Night/weekend plateaus make the CDF far from linear: a single
        # line should leave large relative residuals.
        keys = weblog_timestamps(20_000, seed=1).astype(np.float64)
        positions = np.arange(keys.size)
        coeffs = np.polyfit(keys, positions, 1)
        residual = np.abs(positions - np.polyval(coeffs, keys))
        assert residual.max() > 0.02 * keys.size

    def test_rejects_non_positive_n(self):
        with pytest.raises(ValueError):
            weblog_timestamps(0)
