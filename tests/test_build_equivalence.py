"""Equivalence pins: vectorized segmented-fit build vs the scalar loop.

ISSUE 3's contract for ``build_mode="vectorized"``: same leaf
assignment, same models up to float tolerance, same-or-adjacent error
bounds (floor/ceil of float-rounded extremes may differ by one), and
bit-identical lookups — on every dataset shape that has historically
broken segmented array code (uniform, lognormal, adversarial clusters,
duplicate-heavy, more leaves than keys, trailing empty leaves, empty).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HybridIndex, RecursiveModelIndex, WritableLearnedIndex
from repro.data import lognormal_keys, uniform_keys
from repro.models import LinearModel, segmented_linear_fit

SEED = 0xB111D


def dataset(name: str) -> np.ndarray:
    rng = np.random.default_rng(SEED + hash(name) % 2**16)
    if name == "uniform":
        return uniform_keys(20_000, seed=SEED)
    if name == "lognormal":
        return lognormal_keys(20_000, seed=SEED)
    if name == "clustered":
        centers = rng.integers(0, 10**12, 12)
        parts = [c + rng.integers(0, 60, 400) for c in centers]
        return np.sort(np.concatenate(parts))
    if name == "duplicate_heavy":
        values = np.sort(rng.integers(0, 10**6, 25))
        return np.sort(rng.choice(values, 3_000))
    if name == "empty_leaf":
        # Fewer keys than leaves: most leaves are empty, including
        # interior runs.
        return np.unique(rng.integers(0, 10**9, 40))
    if name == "trailing_empty":
        # All keys routed to the low leaves; every trailing leaf is
        # empty (the reduceat range-corruption regression).
        return np.array([-3, -1, 0], dtype=np.int64)
    if name == "empty":
        return np.empty(0, dtype=np.int64)
    raise ValueError(name)


DATASETS = [
    "uniform",
    "lognormal",
    "clustered",
    "duplicate_heavy",
    "empty_leaf",
    "trailing_empty",
    "empty",
]


def probes(keys: np.ndarray, rng: np.random.Generator, n: int) -> np.ndarray:
    parts = [rng.integers(-(10**13), 10**13, n // 4).astype(np.float64)]
    if keys.size:
        parts.append(rng.choice(keys, n // 2).astype(np.float64))
        parts.append(
            rng.choice(keys, n // 4).astype(np.float64)
            + rng.integers(-2, 3, n // 4)
        )
    return np.concatenate(parts)


def leaf_params(index: RecursiveModelIndex) -> tuple[np.ndarray, np.ndarray]:
    slopes = np.array(
        [getattr(m, "slope", 0.0) for m in index._stages[-1]]
    )
    intercepts = np.array(
        [
            getattr(m, "intercept", getattr(m, "value", 0.0))
            for m in index._stages[-1]
        ]
    )
    return slopes, intercepts


def build_pair(keys, **kwargs):
    scalar = RecursiveModelIndex(keys, build_mode="scalar", **kwargs)
    vector = RecursiveModelIndex(keys, build_mode="vectorized", **kwargs)
    return scalar, vector


@pytest.mark.parametrize("dataset_name", DATASETS)
@pytest.mark.parametrize("leaves", [8, 200])
def test_build_modes_equivalent(dataset_name, leaves):
    keys = dataset(dataset_name)
    scalar, vector = build_pair(keys, stage_sizes=(1, leaves))

    # Same root (shared code path) and same key-to-leaf routing.
    np.testing.assert_array_equal(
        scalar._leaf_assignment, vector._leaf_assignment
    )
    # Same models up to float tolerance.
    s_slopes, s_intercepts = leaf_params(scalar)
    v_slopes, v_intercepts = leaf_params(vector)
    np.testing.assert_allclose(v_slopes, s_slopes, rtol=1e-8, atol=1e-12)
    np.testing.assert_allclose(
        v_intercepts, s_intercepts, rtol=1e-8, atol=1e-6
    )
    # Error bookkeeping: same membership, same moments, and bounds
    # equal up to the one-unit floor/ceil rounding slack.  Moment
    # tolerances are loose in absolute terms because the *scalar*
    # path's ``slope·x + intercept`` cancels catastrophically on huge
    # key magnitudes (clustered keys near 1e12 leave it ~1e-3 of
    # noise); the centered vectorized form is the more accurate one.
    for j, (s_err, v_err) in enumerate(
        zip(scalar.leaf_errors, vector.leaf_errors)
    ):
        assert s_err.count == v_err.count, j
        assert abs(s_err.min_error - v_err.min_error) <= 1, j
        assert abs(s_err.max_error - v_err.max_error) <= 1, j
        assert v_err.mean_absolute == pytest.approx(
            s_err.mean_absolute, rel=1e-4, abs=1e-2
        ), j
        assert v_err.std == pytest.approx(s_err.std, rel=1e-4, abs=1e-2), j

    rng = np.random.default_rng(SEED)
    qs = probes(keys, rng, 400)
    np.testing.assert_array_equal(
        scalar.lookup_batch(qs), vector.lookup_batch(qs)
    )
    for q in qs[:120]:
        assert scalar.lookup(float(q)) == vector.lookup(float(q))
    assert scalar.size_bytes() == vector.size_bytes()


def test_bounds_cover_stored_keys_both_modes():
    """The Section 3.4 window invariant holds under either build."""
    for name in DATASETS:
        keys = dataset(name)
        for index in build_pair(keys, stage_sizes=(1, 16)):
            for i in range(keys.size):
                _est, lo, hi = index.predict(float(keys[i]))
                assert lo <= i < hi, (name, index.build_mode, i)


def test_min_leaf_error_clamp_matches():
    keys = dataset("lognormal")
    scalar, vector = build_pair(
        keys, stage_sizes=(1, 64), min_leaf_error=32
    )
    for s_err, v_err in zip(scalar.leaf_errors, vector.leaf_errors):
        if s_err.count:
            assert v_err.min_error <= -32 and v_err.max_error >= 32
        assert abs(s_err.min_error - v_err.min_error) <= 1
        assert abs(s_err.max_error - v_err.max_error) <= 1


def test_three_stage_vectorized_lookups_match_scalar():
    """Deeper hierarchies vectorize per stage; lookups stay exact."""
    keys = dataset("uniform")
    scalar = RecursiveModelIndex(
        keys, stage_sizes=(1, 10, 200), build_mode="scalar"
    )
    vector = RecursiveModelIndex(
        keys, stage_sizes=(1, 10, 200), build_mode="vectorized"
    )
    rng = np.random.default_rng(SEED + 1)
    qs = probes(keys, rng, 400)
    for q in qs:
        assert scalar.lookup(float(q)) == vector.lookup(float(q))


def test_non_linear_leaves_fall_back_to_scalar_fit():
    """A non-LinearModel factory cannot take the segmented fit; the
    vectorized build mode must still produce a correct index."""
    from repro.models import SplineSegmentModel

    keys = dataset("lognormal")
    factories = [LinearModel, lambda: SplineSegmentModel(knots=4)]
    index = RecursiveModelIndex(
        keys,
        stage_sizes=(1, 32),
        model_factories=factories,
        build_mode="vectorized",
    )
    import bisect

    ref = keys.tolist()
    rng = np.random.default_rng(SEED + 2)
    for q in probes(keys, rng, 200):
        assert index.lookup(float(q)) == bisect.bisect_left(ref, q)


def test_lambda_linear_factory_takes_vectorized_path():
    keys = dataset("uniform")
    index = RecursiveModelIndex(
        keys,
        stage_sizes=(1, 64),
        model_factories=[LinearModel, lambda: LinearModel()],
        build_mode="vectorized",
    )
    # The segmented fit caches flat parameter arrays; the factory sniff
    # must recognize the lambda as plain LinearModel.
    assert index._leaf_param_arrays is not None


def test_invalid_build_mode_rejected():
    with pytest.raises(ValueError):
        RecursiveModelIndex(np.arange(10), build_mode="turbo")


def test_hybrid_replacement_agrees_across_build_modes():
    keys = dataset("clustered")
    threshold = 6
    scalar = HybridIndex(
        keys, stage_sizes=(1, 16), threshold=threshold, build_mode="scalar"
    )
    vector = HybridIndex(
        keys, stage_sizes=(1, 16), threshold=threshold,
        build_mode="vectorized",
    )
    # Replacement keys off max_abs_err > threshold; the one-unit bound
    # rounding slack may flip leaves sitting exactly at the threshold.
    disagree = set(scalar.leaf_btrees) ^ set(vector.leaf_btrees)
    for j in disagree:
        err = (
            scalar.leaf_errors[j]
            if j in scalar.leaf_btrees
            else vector.leaf_errors[j]
        )
        assert abs(err.max_absolute - threshold) <= 1, j
    rng = np.random.default_rng(SEED + 3)
    qs = probes(keys, rng, 300)
    np.testing.assert_array_equal(
        scalar.lookup_batch(qs), vector.lookup_batch(qs)
    )


def test_segmented_fit_matches_per_segment_scalar_fit():
    """Direct unit pin of the segmented engine vs LinearModel.fit,
    including a non-monotone assignment (bincount fallback path)."""
    rng = np.random.default_rng(SEED + 4)
    keys = np.sort(rng.normal(5e8, 1e8, 5_000))
    positions = np.arange(keys.size, dtype=np.float64)
    for contiguous in (True, False):
        if contiguous:
            assignment = np.clip(
                (positions * 40 / keys.size).astype(np.int64), 0, 39
            )
        else:
            assignment = rng.integers(0, 40, keys.size)
        slopes, intercepts, counts, predictions = segmented_linear_fit(
            keys, positions, assignment, 40, return_predictions=True
        )
        for j in range(40):
            members = assignment == j
            assert counts[j] == int(members.sum())
            ref = LinearModel().fit(keys[members], positions[members])
            assert slopes[j] == pytest.approx(
                ref.slope, rel=1e-9, abs=1e-15
            ), j
            assert intercepts[j] == pytest.approx(
                ref.intercept, rel=1e-9, abs=1e-9
            ), j
            np.testing.assert_allclose(
                predictions[members],
                ref.predict_batch(keys[members]),
                rtol=1e-9,
                atol=1e-6,
            )


def test_writable_rebuild_modes_agree():
    """Merge-heavy random mutation, then the two rebuild modes must
    expose identical contents."""
    rng = np.random.default_rng(SEED + 5)
    base = np.unique(rng.integers(0, 50_000, 2_000)).astype(np.int64)
    writables = {
        mode: WritableLearnedIndex(
            base, stage_sizes=(1, 64), merge_threshold=256, build_mode=mode
        )
        for mode in ("scalar", "vectorized")
    }
    for step in range(1_500):
        op = rng.random()
        if op < 0.45:
            key = int(rng.integers(-100, 50_100))
            for w in writables.values():
                w.insert(key)
        elif op < 0.6:
            batch = rng.integers(-100, 50_100, int(rng.integers(1, 300)))
            for w in writables.values():
                w.insert_batch(batch)
        elif op < 0.9:
            key = int(rng.integers(-100, 50_100))
            for w in writables.values():
                w.delete(key)
        else:
            for w in writables.values():
                w.merge()
    for w in writables.values():
        w.merge()
    scalar, vector = writables["scalar"], writables["vectorized"]
    assert len(scalar) == len(vector)
    np.testing.assert_array_equal(scalar._main.keys, vector._main.keys)
    qs = rng.integers(-200, 50_200, 2_000)
    np.testing.assert_array_equal(
        scalar.contains_batch(qs), vector.contains_batch(qs)
    )
