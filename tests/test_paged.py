"""Unit tests for the paged learned index (Appendix D.2)."""

import numpy as np
import pytest

from repro.core import PagedLearnedIndex, PageStore
from repro.data import lognormal_keys, uniform_keys


@pytest.fixture(scope="module")
def keys():
    return uniform_keys(20_000, seed=51)


def truth(keys, q):
    return int(np.searchsorted(keys, q, side="left"))


class TestPageStore:
    def test_pages_are_shuffled(self, keys):
        store = PageStore(keys, page_size=128, shuffle_seed=3)
        assert store.num_pages == (keys.size + 127) // 128
        assert not np.array_equal(
            store.translation, np.arange(store.num_pages)
        )

    def test_translation_is_a_permutation(self, keys):
        store = PageStore(keys, page_size=64)
        assert sorted(store.translation.tolist()) == list(
            range(store.num_pages)
        )

    def test_logical_reassembly(self, keys):
        store = PageStore(keys, page_size=128)
        reassembled = np.concatenate(
            [
                store.read_page(int(store.translation[logical]))
                for logical in range(store.num_pages)
            ]
        )
        np.testing.assert_array_equal(reassembled, keys)

    def test_io_accounting_full_pages(self, keys):
        store = PageStore(keys, page_size=128)
        store.read_page(0)
        assert store.page_reads == 1
        assert store.bytes_read == 128 * 8

    def test_io_accounting_partial(self, keys):
        store = PageStore(keys, page_size=128, partial_reads=True)
        store.read_page(0, 10, 20)
        assert store.bytes_read == 10 * 8

    def test_bad_page_raises(self, keys):
        store = PageStore(keys, page_size=128)
        with pytest.raises(IndexError):
            store.read_page(store.num_pages)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            PageStore(np.array([2, 1]))


class TestPagedLookup:
    @pytest.mark.parametrize("page_size", [32, 256, 1024])
    def test_matches_searchsorted(self, page_size, keys, rng):
        index = PagedLearnedIndex(
            keys, page_size=page_size, stage_sizes=(1, 128)
        )
        queries = np.concatenate(
            [rng.choice(keys, 200), rng.integers(keys.min(), keys.max(), 200)]
        )
        for q in queries:
            page, slot = index.lookup(float(q))
            assert page * page_size + slot == truth(keys, q), q

    def test_lognormal(self, rng):
        keys = lognormal_keys(20_000, seed=52)
        index = PagedLearnedIndex(keys, page_size=256, stage_sizes=(1, 128))
        for q in rng.choice(keys, 300):
            page, slot = index.lookup(float(q))
            assert page * 256 + slot == truth(keys, q)

    def test_contains(self, keys):
        index = PagedLearnedIndex(keys, page_size=256, stage_sizes=(1, 64))
        assert index.contains(float(keys[137]))
        missing = int(keys.max()) + 3
        assert not index.contains(float(missing))

    def test_empty(self):
        index = PagedLearnedIndex(np.array([], dtype=np.int64))
        assert index.lookup(5.0) == (0, 0)
        assert not index.contains(5.0)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            PagedLearnedIndex(np.array([1, 1, 2]))


class TestIOProfile:
    def test_one_page_read_in_the_common_case(self, keys):
        """The appendix's point: window << page -> single page read."""
        index = PagedLearnedIndex(keys, page_size=1024, stage_sizes=(1, 256))
        rng = np.random.default_rng(0)
        index.reset_io()
        queries = rng.choice(keys, 500)
        for q in queries:
            index.lookup(float(q))
        reads, _ = index.io_stats()
        assert reads / len(queries) < 1.6

    def test_partial_reads_cut_bytes(self, keys):
        full = PagedLearnedIndex(
            keys, page_size=1024, stage_sizes=(1, 256), partial_reads=False
        )
        partial = PagedLearnedIndex(
            keys, page_size=1024, stage_sizes=(1, 256), partial_reads=True
        )
        rng = np.random.default_rng(1)
        queries = rng.choice(keys, 300)
        for q in queries:
            full.lookup(float(q))
            partial.lookup(float(q))
        _, full_bytes = full.io_stats()
        _, partial_bytes = partial.io_stats()
        # error window << page size => far fewer bytes per lookup
        assert partial_bytes < full_bytes / 4

    def test_index_far_smaller_than_data(self, keys):
        index = PagedLearnedIndex(keys, page_size=256, stage_sizes=(1, 64))
        data_bytes = keys.size * 8
        assert index.size_bytes() < data_bytes / 10


class TestBatchAPIs:
    """ISSUE 4 satellite: batched reads with per-batch IO accounting."""

    @pytest.mark.parametrize("partial", [False, True])
    def test_lookup_batch_matches_scalar(self, keys, partial):
        rng = np.random.default_rng(8)
        index = PagedLearnedIndex(
            keys, page_size=128, stage_sizes=(1, 200), partial_reads=partial
        )
        queries = np.concatenate([
            rng.choice(keys, 600).astype(np.float64),
            rng.integers(-100, int(keys.max()) + 100, 300).astype(np.float64),
        ])
        batch = index.lookup_batch(queries)
        scalar = np.array([
            page * index.page_size + slot
            for page, slot in (index.lookup(float(q)) for q in queries)
        ])
        np.testing.assert_array_equal(batch, scalar)

    def test_batch_io_is_amortized(self, keys):
        """Each touched page transfers once per batch, not per query."""
        index = PagedLearnedIndex(keys, page_size=128, stage_sizes=(1, 200))
        rng = np.random.default_rng(9)
        queries = rng.choice(keys, 5_000).astype(np.float64)
        index.reset_io()
        index.lookup_batch(queries)
        batch_reads, _ = index.io_stats()
        index.reset_io()
        for q in queries:
            index.lookup(float(q))
        scalar_reads, _ = index.io_stats()
        assert batch_reads <= index.store.num_pages + 16
        assert batch_reads * 5 < scalar_reads

    def test_contains_batch(self, keys):
        rng = np.random.default_rng(10)
        index = PagedLearnedIndex(keys, page_size=128, stage_sizes=(1, 200))
        queries = np.concatenate([
            rng.choice(keys, 200).astype(np.float64),
            rng.integers(-100, int(keys.max()) + 100, 200).astype(np.float64),
        ])
        np.testing.assert_array_equal(
            index.contains_batch(queries),
            np.array([index.contains(float(q)) for q in queries]),
        )

    def test_range_query_batch_matches_reference(self, keys):
        rng = np.random.default_rng(12)
        index = PagedLearnedIndex(keys, page_size=128, stage_sizes=(1, 200))
        lows = rng.integers(-100, int(keys.max()), 150).astype(np.float64)
        highs = lows + rng.integers(-10, 10**7, 150)
        result = index.range_query_batch(lows, highs)
        assert len(result) == 150
        for i in range(150):
            lo, hi = float(lows[i]), float(highs[i])
            expected = (
                keys[np.searchsorted(keys, lo):
                     np.searchsorted(keys, hi, side="right")]
                if hi >= lo else keys[0:0]
            )
            np.testing.assert_array_equal(result[i], expected)
        np.testing.assert_array_equal(
            index.range_query(float(lows[0]), float(highs[0])), result[0]
        )

    def test_empty_batches_and_empty_index(self):
        empty = PagedLearnedIndex(np.array([], dtype=np.int64))
        assert empty.lookup_batch(np.array([1.0, 2.0])).tolist() == [0, 0]
        assert not empty.contains_batch(np.array([1.0])).any()
        index = PagedLearnedIndex(np.arange(100, dtype=np.int64))
        assert index.lookup_batch(np.array([])).size == 0
        result = index.range_query_batch([], [])
        assert len(result) == 0
