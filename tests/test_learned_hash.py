"""Unit tests for learned hash functions (Section 4)."""

import numpy as np
import pytest

from repro.core import LearnedHashFunction, conflict_stats, make_linear_cdf_hash
from repro.hashmap import RandomHashFunction


class TestLearnedHashFunction:
    def test_slots_in_range(self, lognormal_small):
        n = lognormal_small.size
        h = LearnedHashFunction(lognormal_small, n, stage_sizes=(1, 64))
        slots = h.hash_batch(lognormal_small)
        assert slots.min() >= 0
        assert slots.max() < n

    def test_scalar_matches_batch(self, lognormal_small):
        n = lognormal_small.size
        h = LearnedHashFunction(lognormal_small, n, stage_sizes=(1, 64))
        batch = h.hash_batch(lognormal_small[:200])
        for key, expected in zip(lognormal_small[:200], batch):
            assert h(float(key)) == int(expected)

    def test_out_of_distribution_keys_clamped(self, lognormal_small):
        n = lognormal_small.size
        h = LearnedHashFunction(lognormal_small, n, stage_sizes=(1, 64))
        assert 0 <= h(-1e15) < n
        assert 0 <= h(1e15) < n

    def test_rejects_bad_slots(self, lognormal_small):
        with pytest.raises(ValueError):
            LearnedHashFunction(lognormal_small, 0)

    def test_perfect_cdf_data_near_zero_conflicts(self):
        keys = np.arange(0, 50_000, 5, dtype=np.int64)
        h = LearnedHashFunction(keys, keys.size, stage_sizes=(1, 16))
        stats = conflict_stats(h, keys, keys.size)
        assert stats.conflict_rate < 0.01

    def test_size_accounting(self, lognormal_small):
        small = LearnedHashFunction(
            lognormal_small, lognormal_small.size, stage_sizes=(1, 8)
        )
        big = LearnedHashFunction(
            lognormal_small, lognormal_small.size, stage_sizes=(1, 512)
        )
        assert big.size_bytes() > small.size_bytes()

    def test_linear_cdf_hash_helper(self):
        keys = np.arange(1000, dtype=np.int64) * 3
        h = make_linear_cdf_hash(keys, 1000)
        stats = conflict_stats(h, keys, 1000)
        assert stats.conflict_rate < 0.01


class TestConflictStats:
    def test_random_hash_near_birthday_bound(self):
        rng = np.random.default_rng(5)
        keys = np.unique(rng.integers(0, 10**12, size=50_000))
        h = RandomHashFunction(keys.size, seed=3)
        stats = conflict_stats(h, keys, keys.size)
        # n balls in n bins: conflicting keys -> 1/e of keys
        assert stats.conflict_rate == pytest.approx(1 / np.e, abs=0.02)

    def test_learned_beats_random_on_paper_datasets(
        self, maps_small, weblogs_small, lognormal_small
    ):
        reductions = {}
        for name, keys in [
            ("maps", maps_small),
            ("weblogs", weblogs_small),
            ("lognormal", lognormal_small),
        ]:
            n = keys.size
            random_stats = conflict_stats(
                RandomHashFunction(n, seed=7), keys, n
            )
            learned_stats = conflict_stats(
                LearnedHashFunction(keys, n, stage_sizes=(1, max(n // 10, 4))),
                keys,
                n,
            )
            reductions[name] = (
                1 - learned_stats.conflict_rate / random_stats.conflict_rate
            )
        # Figure 8 ordering: maps >> weblogs ~ lognormal > 0
        assert reductions["maps"] > 0.5
        assert reductions["weblogs"] > 0.1
        assert reductions["lognormal"] > 0.1
        assert reductions["maps"] > reductions["weblogs"]

    def test_rejects_out_of_range_hash(self):
        keys = np.arange(10, dtype=np.int64)
        with pytest.raises(ValueError):
            conflict_stats(lambda _k: 99, keys, 10)

    def test_counts(self):
        keys = np.array([1, 2, 3, 4], dtype=np.int64)
        stats = conflict_stats(lambda k: 0, keys, 4)
        assert stats.conflicting_keys == 3
        assert stats.empty_slots == 3
        assert stats.max_chain == 4

    def test_empty_keys(self):
        stats = conflict_stats(lambda k: 0, np.array([]), 4)
        assert stats.conflict_rate == 0.0
