"""Unit tests for the map-longitude simulator."""

import numpy as np

from repro.data.maps import LONGITUDE_SCALE, map_longitudes


class TestMapLongitudes:
    def test_canonical_layout(self):
        keys = map_longitudes(5_000, seed=1)
        assert keys.dtype == np.int64
        assert keys.size == 5_000
        assert np.all(np.diff(keys) > 0)

    def test_deterministic(self):
        np.testing.assert_array_equal(
            map_longitudes(2_000, seed=4), map_longitudes(2_000, seed=4)
        )

    def test_explicit_scale_bounds(self):
        keys = map_longitudes(2_000, seed=1, scale=LONGITUDE_SCALE)
        assert keys.min() >= -180 * LONGITUDE_SCALE
        assert keys.max() <= 180 * LONGITUDE_SCALE

    def test_concentrated_in_populated_bands(self):
        keys = map_longitudes(20_000, seed=1, scale=LONGITUDE_SCALE)
        degrees = keys / LONGITUDE_SCALE
        # Europe band should hold far more than its uniform share.
        europe = ((degrees > -10) & (degrees < 30)).mean()
        assert europe > 0.2
        # Mid-Pacific should be nearly empty.
        pacific = ((degrees > -160) & (degrees < -140)).mean()
        assert pacific < 0.02

    def test_smoother_than_weblogs(self):
        """The paper: maps is 'relatively linear' versus weblogs."""
        from repro.data.weblogs import weblog_timestamps

        def max_rel_residual(keys):
            keys = keys.astype(np.float64)
            positions = np.arange(keys.size)
            coeffs = np.polyfit(keys, positions, 1)
            res = np.abs(positions - np.polyval(coeffs, keys))
            return res.max() / keys.size

        maps_res = max_rel_residual(map_longitudes(20_000, seed=1))
        web_res = max_rel_residual(weblog_timestamps(20_000, seed=1))
        # Both are non-linear at whole-dataset scale, but a 2-stage RMI
        # cares about *local* linearity; globally, maps and weblogs both
        # deviate. Just assert maps is not drastically worse.
        assert maps_res < web_res * 2.5

    def test_default_scale_preserves_density(self):
        n = 20_000
        keys = map_longitudes(n, seed=1)
        gaps = np.diff(keys)
        # Calibrated saturation: a large share of unit gaps.
        assert (gaps == 1).mean() > 0.3
