"""Invariants of the PR 10 index families and their shared fitter.

Three kinds of guarantee, each a hard assertion rather than a
statistical check:

* ``epsilon_segment`` — every segment spanning more than one distinct
  float64 key obeys the ε error bound exactly, every segment's stored
  window covers its measured residual range (that is the engine's
  routing contract), and the split-refine loop converges in the
  logarithmic round budget that makes the build vectorized rather than
  per-segment;
* PGM / RadixSpline — routing structures are well-formed (strictly
  increasing knots, exact bucket brackets, recursion that terminates)
  and every lookup is bit-identical to ``np.searchsorted``;
* the gapped array — slot-layout invariants survive interleaved
  insert/delete churn with a stale in-place-mutated slot model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.families import (
    GappedArrayIndex,
    PGMIndex,
    RadixSplineIndex,
    epsilon_segment,
)
from repro.families.alex import MAX_DENSITY
from repro.models.cdf import positions_for_keys

RNG = np.random.default_rng(0xFA1)


def key_regimes():
    yield "uniform", np.sort(RNG.integers(0, 1 << 40, 20_000, dtype=np.int64))
    yield "lognormal", np.sort(
        (np.exp(RNG.normal(18, 4, 20_000))).astype(np.int64)
    )
    dup = np.sort(RNG.integers(0, 300, 20_000, dtype=np.int64))
    yield "duplicate_heavy", dup
    yield "clustered", np.sort(np.concatenate([
        c + RNG.integers(0, 1_000, 2_500)
        for c in RNG.integers(0, 1 << 50, 8)
    ]).astype(np.int64))
    yield "float", np.sort(RNG.normal(0, 1e9, 20_000))


REGIMES = dict(key_regimes())


# -- the shared ε-segmentation fitter ------------------------------------------

class TestEpsilonSegmentInvariants:
    @pytest.mark.parametrize("regime", sorted(REGIMES))
    @pytest.mark.parametrize("fit", ["least_squares", "endpoint"])
    @pytest.mark.parametrize("eps", [4, 32])
    def test_epsilon_bound_is_hard(self, regime, fit, eps):
        """max |prediction - position| <= ε on every multi-distinct-key
        segment — the defining PGM guarantee, asserted exactly up to
        evaluation rounding.

        The fitter measures residuals in the numerically centered form
        ``slope·(x - x̄) + ȳ``; re-evaluating ``slope·x + intercept``
        loses up to a few ulp of ``|slope·x|`` to cancellation at large
        key magnitudes (which is why the engine pads every window by
        -1/+2 and verifies results).  The tolerance below is exactly
        that ulp budget — zero-slack in well-conditioned regimes.
        """
        keys_f = REGIMES[regime].astype(np.float64)
        n = keys_f.size
        seg = epsilon_segment(keys_f, positions_for_keys(n), eps, fit=fit)
        bounds = seg.boundaries
        assert bounds[0] == 0 and bounds[-1] == n
        assert np.all(bounds[1:] > bounds[:-1])
        for j in range(seg.segment_count):
            lo, hi = int(bounds[j]), int(bounds[j + 1])
            chunk = keys_f[lo:hi]
            terms = seg.slopes[j] * chunk
            resid = terms + seg.intercepts[j]
            resid -= np.arange(lo, hi, dtype=np.float64)
            tol = 4.0 * np.spacing(max(
                float(np.abs(terms).max()), abs(seg.intercepts[j]), 1.0
            ))
            # The stored window must cover the measured residual range
            # for EVERY segment (single-value runs included) — this is
            # what makes the engine's bounded search exact.
            assert seg.lo_offsets[j] >= resid.max() - tol, (regime, j)
            assert seg.hi_offsets[j] <= resid.min() + tol, (regime, j)
            if np.unique(chunk).size >= 2:
                assert np.abs(resid).max() <= eps + tol, (
                    regime, fit, j, np.abs(resid).max(),
                )

    @pytest.mark.parametrize("regime", sorted(REGIMES))
    def test_build_converges_in_logarithmic_rounds(self, regime):
        """Split-refine must stay vectorized: the round count is
        bounded by log2 of the distinct-key count, not by the segment
        count — no per-segment Python fit loops."""
        keys_f = REGIMES[regime].astype(np.float64)
        seg = epsilon_segment(
            keys_f, positions_for_keys(keys_f.size), 8
        )
        distinct = np.unique(keys_f).size
        assert seg.rounds <= int(np.ceil(np.log2(max(distinct, 2)))) + 2, (
            regime, seg.rounds,
        )

    def test_rejects_epsilon_below_one(self):
        with pytest.raises(ValueError):
            epsilon_segment(
                np.arange(10, dtype=np.float64), positions_for_keys(10), 0.5
            )

    def test_segment_first_keys_strictly_increase(self):
        keys_f = REGIMES["duplicate_heavy"].astype(np.float64)
        seg = epsilon_segment(keys_f, positions_for_keys(keys_f.size), 2)
        firsts = keys_f[seg.boundaries[:-1]]
        assert np.all(np.diff(firsts) > 0)


# -- PGM / RadixSpline routing structures --------------------------------------

class TestPGMStructure:
    def test_recursion_produces_internal_levels(self):
        keys = REGIMES["uniform"]
        index = PGMIndex(keys, epsilon=2, epsilon_internal=2)
        assert index.level_count >= 1
        # descending through every level must land on the leaf that the
        # scalar bisect route finds, for in-set keys
        sample = keys[:: max(keys.size // 200, 1)].astype(np.float64)
        leaves = index._descend(sample)
        expected = np.array([index._route_scalar(q) for q in sample])
        np.testing.assert_array_equal(leaves, expected)

    @pytest.mark.parametrize("regime", sorted(REGIMES))
    def test_lookup_matches_searchsorted(self, regime):
        keys = REGIMES[regime]
        index = PGMIndex(keys, epsilon=8, epsilon_internal=2)
        queries = np.concatenate([
            RNG.choice(keys, 2_000),
            RNG.uniform(float(keys.min()) - 10, float(keys.max()) + 10, 2_000)
            .astype(keys.dtype),
        ])
        np.testing.assert_array_equal(
            index.lookup_batch(queries),
            np.searchsorted(keys, queries, side="left"),
        )

    def test_exact_beyond_2p63(self):
        keys = np.sort(RNG.integers(
            (1 << 63) - 4_000, (1 << 63) + 4_000, 4_000, dtype=np.uint64
        ))
        assert np.unique(keys.astype(np.float64)).size < keys.size
        index = PGMIndex(keys, epsilon=4)
        probes = np.sort(RNG.integers(
            (1 << 63) - 4_100, (1 << 63) + 4_100, 2_000, dtype=np.uint64
        ))
        np.testing.assert_array_equal(
            index.lookup_batch(probes),
            np.searchsorted(keys, probes, side="left"),
        )

    def test_top_route_fallback_is_exact(self):
        # Force the searchsorted fallback and check nothing changes.
        keys = REGIMES["clustered"]
        index = PGMIndex(keys, epsilon=8)
        if index._top_route[0] != "search":
            index._top_route = ("search",)
        queries = RNG.choice(keys, 1_000)
        np.testing.assert_array_equal(
            index.lookup_batch(queries),
            np.searchsorted(keys, queries, side="left"),
        )


class TestRadixSplineStructure:
    def test_bucket_brackets_are_exact(self):
        """table[c] <= lower_bound(knots, q) <= table[c+1] for every
        knot and for random probes — the radix routing contract."""
        keys = REGIMES["lognormal"]
        index = RadixSplineIndex(keys, epsilon=8)
        knots = index._knots
        table = index._table
        probes = np.concatenate([
            knots,
            RNG.uniform(float(knots[0]), float(keys.max()), 5_000),
        ])
        cell = ((probes - index._min_f) * index._scale).astype(np.int64)
        np.clip(cell, 0, index._num_cells - 1, out=cell)
        lb = np.searchsorted(knots, probes, side="left")
        assert np.all(table[cell] <= lb)
        assert np.all(lb <= table[cell + 1])

    @pytest.mark.parametrize("regime", sorted(REGIMES))
    def test_lookup_matches_searchsorted(self, regime):
        keys = REGIMES[regime]
        index = RadixSplineIndex(keys, epsilon=8)
        queries = np.concatenate([
            RNG.choice(keys, 2_000),
            RNG.uniform(float(keys.min()) - 10, float(keys.max()) + 10, 2_000)
            .astype(keys.dtype),
        ])
        np.testing.assert_array_equal(
            index.lookup_batch(queries),
            np.searchsorted(keys, queries, side="left"),
        )

    @pytest.mark.parametrize("bits", [4, 10, 20])
    def test_explicit_radix_bits(self, bits):
        keys = REGIMES["uniform"]
        index = RadixSplineIndex(keys, epsilon=16, radix_bits=bits)
        assert index.radix_bits == bits
        queries = RNG.choice(keys, 1_000)
        np.testing.assert_array_equal(
            index.lookup_batch(queries),
            np.searchsorted(keys, queries, side="left"),
        )


# -- the gapped array under churn ----------------------------------------------

def check_slot_invariants(index):
    """The documented layout invariants: occupied slots non-decreasing,
    live keys recoverable in order, rank table consistent."""
    if index._slots is None:
        assert len(index) == 0
        return
    occ = index._occupied
    live = index._slots[occ]
    assert np.all(live[:-1] <= live[1:])
    assert len(index) == int(occ.sum())
    # density stays below the rebuild ceiling after maintenance
    if index._slots.size:
        assert len(index) / index._slots.size <= MAX_DENSITY + 1e-9


class TestGappedArrayChurn:
    def test_interleaved_churn_against_set_oracle(self):
        rng = np.random.default_rng(0xC0FFEE)
        index = GappedArrayIndex(np.unique(
            rng.integers(0, 200_000, 5_000)
        ))
        oracle = set(int(k) for k in index.live_keys())
        for step in range(4_000):
            v = int(rng.integers(0, 200_000))
            if rng.random() < 0.55:
                assert index.insert(v) == (v not in oracle), (step, v)
                oracle.add(v)
            else:
                assert index.delete(v) == (v in oracle), (step, v)
                oracle.discard(v)
            if step % 500 == 499:
                check_slot_invariants(index)
                expected = np.array(sorted(oracle), dtype=np.int64)
                np.testing.assert_array_equal(index.live_keys(), expected)
                probes = rng.integers(0, 200_000, 400)
                np.testing.assert_array_equal(
                    index.lookup_batch(probes),
                    np.searchsorted(expected, probes, side="left"),
                )
                np.testing.assert_array_equal(
                    index.contains_batch(probes),
                    np.isin(probes, expected),
                )
        assert index.rebuilds >= 1  # churn must have forced maintenance

    def test_insert_batch_merge_equivalence(self):
        rng = np.random.default_rng(5)
        base = np.unique(rng.integers(0, 10**7, 3_000))
        extra = rng.integers(0, 10**7, 2_000)
        one = GappedArrayIndex(base)
        one.insert_batch(extra)
        two = GappedArrayIndex(np.unique(np.concatenate([base, extra])))
        np.testing.assert_array_equal(one.live_keys(), two.live_keys())

    def test_empty_start_and_drain(self):
        index = GappedArrayIndex()
        assert len(index) == 0 and not index.contains(1)
        for v in [5, 3, 9, 3]:
            index.insert(v)
        assert len(index) == 3
        for v in [5, 3, 9]:
            assert index.delete(v)
        assert len(index) == 0
        np.testing.assert_array_equal(
            index.lookup_batch(np.array([1, 2])), [0, 0]
        )


# -- family accounting surface (benchmark matrix dependencies) -----------------

class TestAccountingSurface:
    @pytest.mark.parametrize("family", [PGMIndex, RadixSplineIndex])
    def test_size_and_window_accounting(self, family):
        keys = REGIMES["uniform"]
        index = family(keys)
        assert index.segment_count >= 1
        assert index.size_bytes() >= index.segment_count * 32
        assert index.max_error_window >= 1
        assert 0 < index.mean_error_window <= index.max_error_window
        assert str(index.segment_count) in repr(index)
