"""Batch == scalar equivalence for every index type.

The vectorized batch engine (ISSUE 1) must be a pure throughput
optimization: for any query batch, ``lookup_batch(qs)`` returns exactly
``[lookup(q) for q in qs]`` — across every index type, every search
strategy, present keys, absent keys, duplicates, the empty index and
n=1.  Same for ``contains_batch`` / ``hash_batch``, and (ISSUE 2) for
``range_query_batch`` vs scalar ``range_query`` and the sorted-batch
fast path vs the unsorted engine.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import bisect

from repro.bloom import BloomFilter
from repro.btree import (
    BTreeIndex,
    FASTTree,
    FixedSizeBTree,
    GenericBTreeIndex,
    HierarchicalLookupTable,
)
from repro.core import (
    HybridIndex,
    LearnedHashFunction,
    RecursiveModelIndex,
    StringRMI,
    WritableLearnedIndex,
)
from repro.families import GappedArrayIndex, PGMIndex, RadixSplineIndex
from repro.models import LinearModel, SplineSegmentModel

RNG = np.random.default_rng(77)

STRATEGIES = ["binary", "biased_binary", "biased_quaternary", "exponential"]


def dataset(kind: str) -> np.ndarray:
    """The edge-case regimes the batch engine must survive."""
    if kind == "empty":
        return np.array([], dtype=np.int64)
    if kind == "single":
        return np.array([42], dtype=np.int64)
    if kind == "duplicates":
        base = np.sort(RNG.integers(0, 500, 2_000))
        return np.sort(np.concatenate([base, base[:400], base[:400]]))
    if kind == "uniform":
        return np.unique(RNG.integers(0, 10**9, 3_000))
    if kind == "lognormal":
        return np.sort(
            (np.exp(RNG.normal(0, 2.0, 3_000)) * 1e6).astype(np.int64)
        )
    raise ValueError(kind)


def query_batch(keys: np.ndarray) -> np.ndarray:
    """Present keys, absent keys, and out-of-range probes."""
    parts = [np.array([-5.0, 0.0, 2.0**40])]
    if keys.size:
        parts.append(RNG.choice(keys, 200).astype(np.float64))
        parts.append(
            RNG.integers(
                int(keys.min()) - 10, int(keys.max()) + 10, 200
            ).astype(np.float64)
        )
    return np.concatenate(parts)


def assert_batch_matches_scalar(index, queries):
    batch = index.lookup_batch(queries)
    scalar = np.array([index.lookup(float(q)) for q in queries])
    np.testing.assert_array_equal(batch, scalar)
    member = index.contains_batch(queries)
    expected = np.array([index.contains(float(q)) for q in queries])
    np.testing.assert_array_equal(member, expected)


KINDS = ["empty", "single", "duplicates", "uniform", "lognormal"]


class TestRMIEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("kind", KINDS)
    def test_all_strategies_all_regimes(self, kind, strategy):
        keys = dataset(kind)
        index = RecursiveModelIndex(
            keys, stage_sizes=(1, 64), search_strategy=strategy
        )
        assert_batch_matches_scalar(index, query_batch(keys))

    def test_empty_query_batch(self):
        index = RecursiveModelIndex(dataset("uniform"))
        assert index.lookup_batch(np.array([])).size == 0
        assert index.contains_batch(np.array([])).size == 0

    def test_scalar_loop_rename_still_available(self):
        keys = dataset("uniform")
        index = RecursiveModelIndex(keys, stage_sizes=(1, 32))
        queries = query_batch(keys)
        np.testing.assert_array_equal(
            index.lookup_batch_scalar(queries), index.lookup_batch(queries)
        )

    def test_uncompiled_fallback_three_stages(self):
        keys = dataset("lognormal")
        index = RecursiveModelIndex(
            keys,
            stage_sizes=(1, 8, 64),
            model_factories=[LinearModel, LinearModel, LinearModel],
        )
        assert not index._compiled
        assert_batch_matches_scalar(index, query_batch(keys))

    def test_uncompiled_fallback_spline_leaves(self):
        keys = dataset("uniform")
        index = RecursiveModelIndex(
            keys,
            stage_sizes=(1, 16),
            model_factories=[LinearModel, lambda: SplineSegmentModel(knots=4)],
        )
        assert not index._compiled
        assert_batch_matches_scalar(index, query_batch(keys))

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        keys=st.lists(
            st.integers(min_value=-(10**9), max_value=10**9),
            min_size=0,
            max_size=300,
        ).map(lambda xs: np.array(sorted(xs), dtype=np.int64)),
        qs=st.lists(
            st.integers(min_value=-(2 * 10**9), max_value=2 * 10**9),
            min_size=1,
            max_size=40,
        ),
        leaves=st.integers(1, 64),
    )
    def test_property_batch_equals_scalar(self, keys, qs, leaves):
        index = RecursiveModelIndex(keys, stage_sizes=(1, leaves))
        queries = np.asarray(qs, dtype=np.float64)
        assert_batch_matches_scalar(index, queries)

    def test_upper_bound_duplicates_match_searchsorted(self):
        keys = dataset("duplicates")
        index = RecursiveModelIndex(keys, stage_sizes=(1, 32))
        for q in query_batch(keys)[:120]:
            assert index.upper_bound(float(q)) == int(
                np.searchsorted(keys, q, side="right")
            )

    def test_range_query_duplicates(self):
        keys = dataset("duplicates")
        index = RecursiveModelIndex(keys, stage_sizes=(1, 32))
        lo, hi = int(keys[100]), int(keys[-100])
        expected = keys[(keys >= lo) & (keys <= hi)]
        np.testing.assert_array_equal(index.range_query(lo, hi), expected)


class TestBaselineEquivalence:
    @pytest.mark.parametrize("kind", KINDS)
    def test_btree(self, kind):
        keys = dataset(kind)
        assert_batch_matches_scalar(
            BTreeIndex(keys, page_size=32), query_batch(keys)
        )

    @pytest.mark.parametrize("kind", KINDS)
    def test_fixed_btree(self, kind):
        keys = dataset(kind)
        assert_batch_matches_scalar(
            FixedSizeBTree(keys, size_budget_bytes=2_048), query_batch(keys)
        )

    @pytest.mark.parametrize("kind", KINDS)
    def test_lookup_table(self, kind):
        keys = dataset(kind)
        assert_batch_matches_scalar(
            HierarchicalLookupTable(keys, group=16), query_batch(keys)
        )

    @pytest.mark.parametrize("kind", KINDS)
    def test_fast_tree(self, kind):
        keys = dataset(kind)
        assert_batch_matches_scalar(
            FASTTree(keys, page_size=16), query_batch(keys)
        )


RANGE_FACTORIES = {
    "rmi": lambda keys: RecursiveModelIndex(keys, stage_sizes=(1, 32)),
    "hybrid": lambda keys: HybridIndex(keys, stage_sizes=(1, 16), threshold=4),
    "btree": lambda keys: BTreeIndex(keys, page_size=32),
    "fixed_btree": lambda keys: FixedSizeBTree(keys, size_budget_bytes=2_048),
    "lookup_table": lambda keys: HierarchicalLookupTable(keys, group=16),
    "fast_tree": lambda keys: FASTTree(keys, page_size=16),
    "pgm": lambda keys: PGMIndex(keys, epsilon=4, epsilon_internal=2),
    "radix_spline": lambda keys: RadixSplineIndex(
        keys, epsilon=4, radix_bits=6
    ),
}


def range_endpoints(keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Mixed endpoints: ordinary, degenerate (low == high), inverted,
    fully out-of-range, and spanning-everything ranges."""
    lows = query_batch(keys)
    highs = query_batch(keys)[: lows.size]
    # force some degenerate and inverted pairs at known slots
    highs[0] = lows[0]
    if lows.size > 1:
        lows[1], highs[1] = max(lows[1], highs[1]), min(lows[1], highs[1]) - 1
    return lows, highs


class TestRangeBatchEquivalence:
    """range_query_batch == scalar range_query, per range, bit-identical."""

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("name", sorted(RANGE_FACTORIES))
    def test_batch_matches_scalar(self, name, kind):
        keys = dataset(kind)
        index = RANGE_FACTORIES[name](keys)
        lows, highs = range_endpoints(keys)
        result = index.range_query_batch(lows, highs)
        assert len(result) == lows.size
        for i in range(lows.size):
            expected = index.range_query(float(lows[i]), float(highs[i]))
            np.testing.assert_array_equal(
                np.asarray(result[i]),
                np.asarray(expected),
                err_msg=f"{name}/{kind} range {i}",
            )
        assert result.total == int(result.counts.sum())

    def test_string_rmi_range_batch(self, strings_small, rng):
        index = StringRMI(strings_small, num_leaves=50)
        lows = list(rng.choice(strings_small, 40)) + ["", "zzz"]
        highs = list(rng.choice(strings_small, 40)) + ["zzz", ""]
        result = index.range_query_batch(lows, highs)
        for i, (lo, hi) in enumerate(zip(lows, highs)):
            assert list(result[i]) == index.range_query(lo, hi), i

    def test_writable_range_batch(self):
        index = WritableLearnedIndex(
            np.arange(0, 4_000, 4, dtype=np.int64), merge_threshold=10_000
        )
        for k in range(1, 600, 6):
            index.insert(k)
        for k in range(0, 1_200, 8):
            index.delete(k)
        lows = np.arange(-10, 4_010, 97, dtype=np.int64)
        highs = lows + np.tile([0, -5, 50, 400], lows.size)[: lows.size]
        result = index.range_query_batch(lows, highs)
        for i in range(lows.size):
            np.testing.assert_array_equal(
                result[i], index.range_query(int(lows[i]), int(highs[i]))
            )


class TestSortedPathEquivalence:
    """sorted-path == unsorted-path, bit-identical, for every regime."""

    @pytest.mark.parametrize("kind", KINDS)
    def test_rmi_sorted_matches_unsorted(self, kind):
        keys = dataset(kind)
        index = RecursiveModelIndex(keys, stage_sizes=(1, 64))
        queries = query_batch(keys)
        unsorted = index.lookup_batch(queries, sort=False)
        np.testing.assert_array_equal(
            index.lookup_batch(queries, sort=True), unsorted
        )
        # the heuristic default must agree with both forced paths
        np.testing.assert_array_equal(index.lookup_batch(queries), unsorted)

    def test_hybrid_sorted_matches_unsorted(self):
        keys = dataset("lognormal")
        index = HybridIndex(keys, stage_sizes=(1, 16), threshold=4)
        assert index.replaced_leaf_count > 0
        queries = query_batch(keys)
        np.testing.assert_array_equal(
            index.lookup_batch(queries, sort=True),
            index.lookup_batch(queries, sort=False),
        )

    def test_range_batch_sorted_matches_unsorted(self):
        keys = dataset("duplicates")
        index = RecursiveModelIndex(keys, stage_sizes=(1, 32))
        lows, highs = range_endpoints(keys)
        a = index.range_query_batch(lows, highs, sort=True)
        b = index.range_query_batch(lows, highs, sort=False)
        np.testing.assert_array_equal(a.values, b.values)
        np.testing.assert_array_equal(a.offsets, b.offsets)
        np.testing.assert_array_equal(a.starts, b.starts)
        np.testing.assert_array_equal(a.ends, b.ends)

    def test_presorted_queries_hit_same_positions(self):
        keys = dataset("uniform")
        index = RecursiveModelIndex(keys, stage_sizes=(1, 64))
        queries = np.sort(query_batch(keys))
        np.testing.assert_array_equal(
            index.lookup_batch(queries, sort=True),
            np.array([index.lookup(float(q)) for q in queries]),
        )


class TestHybridEquivalence:
    @pytest.mark.parametrize("threshold", [0, 4, 10**9])
    def test_hybrid_with_fallback_leaves(self, threshold):
        keys = dataset("lognormal")
        index = HybridIndex(keys, stage_sizes=(1, 16), threshold=threshold)
        if threshold == 0:
            assert index.replaced_leaf_count > 0
        assert_batch_matches_scalar(index, query_batch(keys))

    @pytest.mark.parametrize("kind", ["empty", "single", "duplicates"])
    def test_hybrid_edge_regimes(self, kind):
        keys = dataset(kind)
        index = HybridIndex(keys, stage_sizes=(1, 8), threshold=2)
        assert_batch_matches_scalar(index, query_batch(keys))


class TestStringEquivalence:
    @pytest.mark.parametrize("hybrid_threshold", [None, 1])
    def test_string_rmi(self, strings_small, hybrid_threshold, rng):
        index = StringRMI(
            strings_small,
            num_leaves=50,
            hybrid_threshold=hybrid_threshold,
        )
        queries = (
            list(rng.choice(strings_small, 100))
            + ["", "zzzzzz", "!absent", strings_small[0] + "x"]
        )
        batch = index.lookup_batch(queries)
        scalar = np.array([index.lookup(q) for q in queries])
        np.testing.assert_array_equal(batch, scalar)
        member = index.contains_batch(queries)
        expected = np.array([index.contains(q) for q in queries])
        np.testing.assert_array_equal(member, expected)

    def test_string_rmi_empty_and_single(self):
        for keys in ([], ["only"]):
            index = StringRMI(keys, num_leaves=4)
            queries = ["", "a", "only", "zz"]
            np.testing.assert_array_equal(
                index.lookup_batch(queries),
                np.array([index.lookup(q) for q in queries]),
            )

    def test_generic_btree_strings(self, strings_small, rng):
        tree = GenericBTreeIndex(strings_small, page_size=32)
        queries = list(rng.choice(strings_small, 80)) + ["", "~~~absent"]
        np.testing.assert_array_equal(
            tree.lookup_batch(queries),
            np.array([tree.lookup(q) for q in queries]),
        )
        np.testing.assert_array_equal(
            tree.contains_batch(queries),
            np.array([tree.contains(q) for q in queries]),
        )


class TestWritableEquivalence:
    def test_contains_batch_with_delta_and_tombstones(self):
        base = np.arange(0, 4_000, 4, dtype=np.int64)
        index = WritableLearnedIndex(base, merge_threshold=10_000)
        for k in range(1, 600, 6):
            index.insert(k)
        for k in range(0, 1_200, 8):
            index.delete(k)
        assert index.delta_size > 0
        queries = np.arange(-10, 4_020, dtype=np.int64)
        batch = index.contains_batch(queries)
        expected = np.array([index.contains(int(q)) for q in queries])
        np.testing.assert_array_equal(batch, expected)

    def test_contains_batch_empty_index(self):
        index = WritableLearnedIndex()
        np.testing.assert_array_equal(
            index.contains_batch(np.array([1, 2, 3])),
            np.array([False, False, False]),
        )


class TestHashAndBloomEquivalence:
    def test_learned_hash_batch(self, lognormal_small):
        h = LearnedHashFunction(
            lognormal_small, num_slots=5_000, stage_sizes=(1, 100)
        )
        probes = np.concatenate(
            [lognormal_small[:300], lognormal_small[:300] + 1]
        ).astype(np.float64)
        batch = h.hash_batch(probes)
        scalar = np.array([h(float(q)) for q in probes])
        np.testing.assert_array_equal(batch, scalar)

    def test_standard_bloom_batch(self):
        bloom = BloomFilter.for_capacity(500, 0.01)
        keys = [f"key:{i}" for i in range(500)]
        bloom.add_batch(keys)
        probes = keys[:100] + [f"absent:{i}" for i in range(100)]
        batch = bloom.contains_batch(probes)
        expected = np.array([p in bloom for p in probes])
        np.testing.assert_array_equal(batch, expected)
        assert bloom.contains_batch([]).size == 0


# -- exact 64-bit keys (ISSUE 5) ----------------------------------------------
#
# Adversarial key sets at and beyond 2^53 — adjacent keys differing by
# 1 near 2^63 — where a float64 round-trip collides neighbours.  Every
# batch API must stay exact and pinned batch == scalar, with Python-int
# scalar probes (float() would round the queries themselves).


def huge_dataset(kind: str) -> np.ndarray:
    """Key regimes beyond float64's integer resolution."""
    rng = np.random.default_rng(0xB16)
    if kind == "int64_adjacent":
        parts = [
            np.arange(2**53 - 200, 2**53 + 200, dtype=np.int64),
            (2**63 - 3_000) + np.cumsum(rng.integers(1, 3, 600)),
            np.arange(2**63 - 40, 2**63 - 1, dtype=np.int64),
        ]
        return np.unique(np.concatenate(parts).astype(np.int64))
    if kind == "uint64_top":
        gaps = rng.integers(1, 3, 1_200).astype(np.uint64)
        return np.uint64(2**63 - 1_200) + np.cumsum(gaps)
    raise ValueError(kind)


def huge_probes(keys: np.ndarray, rng) -> np.ndarray:
    """Present keys plus +-1 adjacents, same dtype as the keys."""
    lo, hi = int(keys.min()), int(keys.max())
    picks = [int(k) for k in rng.choice(keys, 250)]
    near = [min(max(k + d, lo - 2), hi) for k in picks for d in (-1, 1)]
    if keys.dtype == np.uint64:
        near = [max(k, 0) for k in near]
    return np.unique(np.array(picks + near + [lo, hi], dtype=keys.dtype))


HUGE_KINDS = ["int64_adjacent", "uint64_top"]

HUGE_FACTORIES = {
    "rmi": lambda keys: RecursiveModelIndex(keys, stage_sizes=(1, 48)),
    "rmi_exponential": lambda keys: RecursiveModelIndex(
        keys, stage_sizes=(1, 48), search_strategy="exponential"
    ),
    "hybrid": lambda keys: HybridIndex(keys, stage_sizes=(1, 16), threshold=4),
    "btree": lambda keys: BTreeIndex(keys, page_size=32),
    "fixed_btree": lambda keys: FixedSizeBTree(keys, size_budget_bytes=2_048),
    "lookup_table": lambda keys: HierarchicalLookupTable(keys, group=16),
    "fast_tree": lambda keys: FASTTree(keys, page_size=16),
    "pgm": lambda keys: PGMIndex(keys, epsilon=4, epsilon_internal=2),
    "radix_spline": lambda keys: RadixSplineIndex(
        keys, epsilon=4, radix_bits=6
    ),
}


class TestExact64BitEquivalence:
    """batch == scalar == bisect oracle beyond 2^53, every index type."""

    @pytest.mark.parametrize("kind", HUGE_KINDS)
    def test_dataset_exceeds_float64_resolution(self, kind):
        keys = huge_dataset(kind)
        assert np.unique(keys.astype(np.float64)).size < keys.size

    @pytest.mark.parametrize("kind", HUGE_KINDS)
    @pytest.mark.parametrize("name", sorted(HUGE_FACTORIES))
    def test_point_ops_exact(self, name, kind):
        rng = np.random.default_rng(0xE5 + hash((name, kind)) % 2**16)
        keys = huge_dataset(kind)
        index = HUGE_FACTORIES[name](keys)
        oracle = [int(k) for k in keys]
        probes = huge_probes(keys, rng)
        items = [int(q) for q in probes]
        expected_lb = np.array([bisect.bisect_left(oracle, q) for q in items])
        np.testing.assert_array_equal(
            index.lookup_batch(probes), expected_lb,
            err_msg=f"{name}/{kind} lookup_batch",
        )
        scalar = np.array([index.lookup(q) for q in items])
        np.testing.assert_array_equal(scalar, expected_lb)
        np.testing.assert_array_equal(
            index.contains_batch(probes),
            np.array([
                p < len(oracle) and oracle[p] == q
                for p, q in zip(expected_lb, items)
            ]),
            err_msg=f"{name}/{kind} contains_batch",
        )
        np.testing.assert_array_equal(
            index.upper_bound_batch(probes),
            np.array([bisect.bisect_right(oracle, q) for q in items]),
            err_msg=f"{name}/{kind} upper_bound_batch",
        )

    @pytest.mark.parametrize("kind", HUGE_KINDS)
    @pytest.mark.parametrize("name", sorted(HUGE_FACTORIES))
    def test_range_ops_exact(self, name, kind):
        rng = np.random.default_rng(0xE6 + hash((name, kind)) % 2**16)
        keys = huge_dataset(kind)
        index = HUGE_FACTORIES[name](keys)
        oracle = [int(k) for k in keys]
        lows = huge_probes(keys, rng)[:120]
        spans = rng.integers(0, 60, lows.size).astype(lows.dtype)
        top = np.asarray(keys.max(), dtype=lows.dtype)
        highs = np.minimum(lows + spans, top)  # stay inside the dtype
        result = index.range_query_batch(lows, highs)
        for i in range(lows.size):
            lo, hi = int(lows[i]), int(highs[i])
            expected = oracle[
                bisect.bisect_left(oracle, lo):bisect.bisect_right(oracle, hi)
            ]
            assert list(result[i]) == expected, (name, kind, i)

    def test_rmi_sorted_path_exact(self):
        keys = huge_dataset("int64_adjacent")
        index = RecursiveModelIndex(keys, stage_sizes=(1, 48))
        rng = np.random.default_rng(0xE7)
        probes = np.concatenate([huge_probes(keys, rng)] * 3)
        unsorted = index.lookup_batch(probes, sort=False)
        np.testing.assert_array_equal(
            index.lookup_batch(probes, sort=True), unsorted
        )
        np.testing.assert_array_equal(index.lookup_batch(probes), unsorted)


class TestExact64BitWritable:
    def test_writable_huge_round_trip(self):
        keys = huge_dataset("int64_adjacent")
        rng = np.random.default_rng(0xE8)
        index = WritableLearnedIndex(
            keys[::2].copy(), stage_sizes=(1, 32), merge_threshold=400
        )
        live = set(int(k) for k in keys[::2])
        for k in keys[1::4].tolist():
            index.insert(k)
            live.add(k)
        for k in keys[::6].tolist():
            index.delete(k)
            live.discard(k)
        slist = sorted(live)
        probes = huge_probes(keys, rng)
        items = [int(q) for q in probes]
        np.testing.assert_array_equal(
            index.lookup_batch(probes),
            np.array([bisect.bisect_left(slist, q) for q in items]),
        )
        np.testing.assert_array_equal(
            index.upper_bound_batch(probes),
            np.array([bisect.bisect_right(slist, q) for q in items]),
        )
        np.testing.assert_array_equal(
            index.contains_batch(probes),
            np.array([q in live for q in items]),
        )
        for q in items[:25]:
            assert index.lookup(q) == bisect.bisect_left(slist, q)
            assert index.contains(q) == (q in live)
        lows = probes[:60]
        highs = np.minimum(
            lows + rng.integers(0, 50, 60), np.int64(2**63 - 1)
        )
        result = index.range_query_batch(lows, highs)
        for i in range(60):
            expected = slist[
                bisect.bisect_left(slist, int(lows[i])):
                bisect.bisect_right(slist, int(highs[i]))
            ]
            assert list(result[i]) == expected, i


# -- PR 10 families ------------------------------------------------------------

FAMILY_FACTORIES = {
    "pgm": lambda keys: PGMIndex(keys, epsilon=4, epsilon_internal=2),
    "pgm_deep": lambda keys: PGMIndex(keys, epsilon=2, epsilon_internal=1),
    "radix_spline": lambda keys: RadixSplineIndex(
        keys, epsilon=4, radix_bits=6
    ),
}


class TestFamilyBatchEquivalence:
    """PGM / RadixSpline batch surfaces == scalar loops, all regimes."""

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("name", sorted(FAMILY_FACTORIES))
    def test_batch_matches_scalar(self, name, kind):
        keys = dataset(kind)
        index = FAMILY_FACTORIES[name](keys)
        queries = query_batch(keys)
        assert_batch_matches_scalar(index, queries)
        np.testing.assert_array_equal(
            index.lookup_batch_scalar(queries), index.lookup_batch(queries)
        )

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("name", sorted(FAMILY_FACTORIES))
    def test_sorted_path_matches_unsorted(self, kind, name):
        keys = dataset(kind)
        index = FAMILY_FACTORIES[name](keys)
        queries = query_batch(keys)
        np.testing.assert_array_equal(
            index.lookup_batch(queries, sort=True),
            index.lookup_batch(queries, sort=False),
        )
        np.testing.assert_array_equal(
            index.upper_bound_batch(queries, sort=True),
            index.upper_bound_batch(queries, sort=False),
        )

    @pytest.mark.parametrize("kind", ["duplicates", "uniform", "lognormal"])
    def test_gapped_array_batch_after_churn(self, kind):
        """Batch == scalar for the writable family while its slot model
        goes stale through interleaved inserts and deletes."""
        keys = np.unique(dataset(kind))
        index = GappedArrayIndex(keys)
        rng = np.random.default_rng(0xA1EC)
        churn = rng.integers(0, 10**9, 1_200)
        for step, v in enumerate(churn.tolist()):
            if step % 3 == 2:
                index.delete(v)
            else:
                index.insert(v)
            if step % 400 == 399:
                queries = query_batch(index.live_keys())
                assert_batch_matches_scalar(index, queries)
                batch_ub = index.upper_bound_batch(queries)
                scalar_ub = np.array(
                    [index.upper_bound(float(q)) for q in queries]
                )
                np.testing.assert_array_equal(batch_ub, scalar_ub)
