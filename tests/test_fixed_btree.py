"""Unit tests for the budgeted fixed-size B-Tree with interpolation."""

import numpy as np
import pytest

from repro.btree import FixedSizeBTree


def truth(keys, q):
    return int(np.searchsorted(keys, q, side="left"))


class TestFixedSizeBTree:
    def test_respects_size_budget(self, uniform_small):
        for budget in (1_000, 10_000, 50_000):
            tree = FixedSizeBTree(uniform_small, size_budget_bytes=budget)
            assert tree.size_bytes() <= budget * 1.05

    def test_matches_searchsorted(self, uniform_small, rng):
        tree = FixedSizeBTree(uniform_small, size_budget_bytes=20_000)
        queries = np.concatenate(
            [
                rng.choice(uniform_small, 300),
                rng.integers(
                    uniform_small.min() - 5, uniform_small.max() + 5, 300
                ),
            ]
        )
        for q in queries:
            assert tree.lookup(float(q)) == truth(uniform_small, q)

    def test_matches_on_lognormal(self, lognormal_small, rng):
        tree = FixedSizeBTree(lognormal_small, size_budget_bytes=8_000)
        for q in rng.choice(lognormal_small, 300):
            assert tree.lookup(float(q)) == truth(lognormal_small, q)

    def test_budget_controls_separator_count(self, lognormal_small, rng):
        small = FixedSizeBTree(lognormal_small, size_budget_bytes=2_000)
        large = FixedSizeBTree(lognormal_small, size_budget_bytes=40_000)
        assert small._run_starts.size < large._run_starts.size
        # Interpolation keeps per-lookup cost modest even on long runs.
        queries = rng.choice(lognormal_small, 200)
        small.stats.reset()
        for q in queries:
            small.lookup(float(q))
        per_lookup = small.stats.comparisons / 200
        assert per_lookup < 3 * np.log2(lognormal_small.size)

    def test_rejects_tiny_budget(self):
        with pytest.raises(ValueError):
            FixedSizeBTree(np.array([1, 2, 3]), size_budget_bytes=4)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            FixedSizeBTree(np.array([2, 1]), size_budget_bytes=1000)

    def test_empty(self):
        tree = FixedSizeBTree(np.array([], dtype=np.int64), size_budget_bytes=1000)
        assert tree.lookup(5.0) == 0

    def test_contains(self, uniform_small):
        tree = FixedSizeBTree(uniform_small, size_budget_bytes=10_000)
        assert tree.contains(float(uniform_small[0]))
        assert not tree.contains(float(uniform_small.max() + 13))
