"""Unit tests for murmur-style hash functions."""

import numpy as np
import pytest

from repro.hashmap import (
    RandomHashFunction,
    murmur3_string,
    murmur_fmix64,
    murmur_fmix64_batch,
)


class TestFmix64:
    def test_deterministic(self):
        assert murmur_fmix64(12345) == murmur_fmix64(12345)

    def test_seed_changes_output(self):
        assert murmur_fmix64(12345, seed=1) != murmur_fmix64(12345, seed=2)

    def test_64_bit_range(self):
        for key in (0, 1, 2**63 - 1, 2**64 - 1):
            h = murmur_fmix64(key)
            assert 0 <= h < 2**64

    def test_avalanche(self):
        """Flipping one input bit flips ~half the output bits."""
        flips = []
        for key in range(0, 2000, 7):
            a = murmur_fmix64(key)
            b = murmur_fmix64(key ^ 1)
            flips.append(bin(a ^ b).count("1"))
        assert 24 < np.mean(flips) < 40

    def test_batch_matches_scalar(self):
        keys = np.array([0, 1, 99, 2**40, 2**62], dtype=np.int64)
        batch = murmur_fmix64_batch(keys, seed=5)
        for key, h in zip(keys, batch):
            assert murmur_fmix64(int(key), seed=5) == int(h)

    def test_uniformity(self):
        keys = np.arange(100_000, dtype=np.int64)
        hashed = murmur_fmix64_batch(keys)
        slots = (hashed % np.uint64(64)).astype(np.int64)
        counts = np.bincount(slots, minlength=64)
        # chi-square-ish sanity: all bins within 10% of expectation
        expected = 100_000 / 64
        assert np.all(np.abs(counts - expected) < expected * 0.1)


class TestMurmur3String:
    def test_known_vectors(self):
        # Reference values of MurmurHash3_x86_32 (seed 0)
        assert murmur3_string(b"", 0) == 0
        assert murmur3_string(b"a", 0) == 0x3C2569B2
        assert murmur3_string(b"hello", 0) == 0x248BFA47

    def test_str_and_bytes_agree(self):
        assert murmur3_string("abc") == murmur3_string(b"abc")

    def test_seed_sensitivity(self):
        assert murmur3_string("abc", 1) != murmur3_string("abc", 2)

    def test_tail_lengths(self):
        values = {murmur3_string("x" * i) for i in range(1, 9)}
        assert len(values) == 8


class TestRandomHashFunction:
    def test_in_range(self):
        h = RandomHashFunction(100, seed=1)
        assert all(0 <= h(k) < 100 for k in range(1000))

    def test_batch_matches_scalar(self):
        h = RandomHashFunction(997, seed=2)
        keys = np.array([5, 10**9, 2**50], dtype=np.int64)
        batch = h.hash_batch(keys)
        for key, slot in zip(keys, batch):
            assert h(int(key)) == int(slot)

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            RandomHashFunction(0)
