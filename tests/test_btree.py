"""Unit tests for the read-optimized B+Tree baseline."""

import bisect

import numpy as np
import pytest

from repro.btree import BTreeIndex, GenericBTreeIndex


def truth(keys: np.ndarray, q) -> int:
    return int(np.searchsorted(keys, q, side="left"))


class TestConstruction:
    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            BTreeIndex(np.array([3, 1, 2]))

    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            BTreeIndex(np.array([1, 2, 3]), page_size=0)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            BTreeIndex(np.zeros((2, 2)))

    def test_empty(self):
        tree = BTreeIndex(np.array([], dtype=np.int64))
        assert tree.lookup(42.0) == 0
        assert not tree.contains(42.0)

    def test_height_shrinks_with_page_size(self):
        keys = np.arange(100_000, dtype=np.int64)
        tall = BTreeIndex(keys, page_size=8)
        short = BTreeIndex(keys, page_size=512)
        assert tall.height > short.height

    def test_size_scales_inversely_with_page_size(self):
        keys = np.arange(100_000, dtype=np.int64)
        sizes = {
            p: BTreeIndex(keys, page_size=p).size_bytes()
            for p in (32, 64, 128)
        }
        # halving the page size roughly doubles the index (Figure 4's
        # 4.00x / 2.00x / 1.00x column)
        assert sizes[32] / sizes[64] == pytest.approx(2.0, rel=0.1)
        assert sizes[64] / sizes[128] == pytest.approx(2.0, rel=0.1)


class TestLookup:
    @pytest.mark.parametrize("page_size", [1, 2, 7, 32, 128, 1024])
    def test_matches_searchsorted(self, page_size, uniform_small, rng):
        keys = uniform_small
        tree = BTreeIndex(keys, page_size=page_size)
        queries = np.concatenate(
            [
                rng.choice(keys, 200),
                rng.integers(keys.min() - 5, keys.max() + 5, size=200),
                np.array([keys.min() - 100, keys.max() + 100]),
            ]
        )
        for q in queries:
            assert tree.lookup(float(q)) == truth(keys, q)

    def test_lookup_on_lognormal(self, lognormal_small, rng):
        tree = BTreeIndex(lognormal_small, page_size=64)
        for q in rng.choice(lognormal_small, 300):
            assert tree.lookup(float(q)) == truth(lognormal_small, q)

    def test_contains(self, uniform_small):
        tree = BTreeIndex(uniform_small, page_size=64)
        assert tree.contains(float(uniform_small[17]))
        missing = int(uniform_small.max()) + 1
        assert not tree.contains(float(missing))

    def test_single_key(self):
        tree = BTreeIndex(np.array([42], dtype=np.int64), page_size=16)
        assert tree.lookup(41.0) == 0
        assert tree.lookup(42.0) == 0
        assert tree.lookup(43.0) == 1

    def test_stats_accumulate(self, uniform_small):
        tree = BTreeIndex(uniform_small, page_size=64)
        tree.stats.reset()
        tree.lookup(float(uniform_small[0]))
        assert tree.stats.lookups == 1
        assert tree.stats.nodes_visited >= tree.height
        assert tree.stats.comparisons > 0


class TestRangeQuery:
    def test_inclusive_bounds(self):
        keys = np.array([10, 20, 30, 40, 50], dtype=np.int64)
        tree = BTreeIndex(keys, page_size=2)
        np.testing.assert_array_equal(tree.range_query(20, 40), [20, 30, 40])

    def test_between_keys(self):
        keys = np.array([10, 20, 30], dtype=np.int64)
        tree = BTreeIndex(keys, page_size=2)
        np.testing.assert_array_equal(tree.range_query(11, 29), [20])

    def test_empty_range(self):
        keys = np.array([10, 20, 30], dtype=np.int64)
        tree = BTreeIndex(keys, page_size=2)
        assert tree.range_query(21, 20).size == 0

    def test_matches_numpy_reference(self, uniform_small, rng):
        tree = BTreeIndex(uniform_small, page_size=32)
        for _ in range(30):
            lo, hi = sorted(rng.integers(0, uniform_small.max(), size=2))
            expected = uniform_small[
                (uniform_small >= lo) & (uniform_small <= hi)
            ]
            np.testing.assert_array_equal(tree.range_query(lo, hi), expected)


class TestGenericBTree:
    def test_string_lookups(self, strings_small, rng):
        tree = GenericBTreeIndex(strings_small, page_size=32)
        probes = [strings_small[i] for i in rng.integers(0, len(strings_small), 100)]
        probes += [p + "!" for p in probes[:30]] + ["", "zzzz"]
        for q in probes:
            assert tree.lookup(q) == bisect.bisect_left(strings_small, q)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            GenericBTreeIndex(["b", "a"])

    def test_contains(self, strings_small):
        tree = GenericBTreeIndex(strings_small, page_size=16)
        assert tree.contains(strings_small[5])
        assert not tree.contains(strings_small[5] + "x")

    def test_size_counts_string_bytes(self):
        tree = GenericBTreeIndex(["aa", "bb", "cc", "dd"], page_size=2)
        assert tree.size_bytes() > 0
        assert tree.size_bytes(key_bytes=100) > tree.size_bytes()
