"""Unit tests for the unified dtype-aware query core (ISSUE 5).

The engine's contract: every comparison runs in the key column's
native dtype, so integer keys at or beyond 2^53 never round together;
float queries against integer columns compare as exact integer
ceilings; cross-dtype integer queries clamp to the column's range with
correct boundary semantics.
"""

import bisect

import numpy as np
import pytest

from repro.core import RecursiveModelIndex
from repro.core.engine import (
    CompiledPlan,
    QueryBatch,
    SortedKeyColumn,
    upper_bounds_batch,
)


def bisect_lb(keys, q):
    return bisect.bisect_left(keys, q)


class TestPrepare:
    def test_same_dtype_passthrough(self):
        keys = np.array([1, 5, 9], dtype=np.int64)
        column = SortedKeyColumn(keys)
        q = np.array([0, 5, 10], dtype=np.int64)
        qb = column.prepare(q)
        assert qb.compare is q
        assert qb.exactable is None
        assert qb.oob_high is None

    def test_prepare_idempotent(self):
        column = SortedKeyColumn(np.array([1, 2], dtype=np.int64))
        qb = column.prepare(np.array([1.5]))
        assert column.prepare(qb) is qb

    def test_float_queries_ceil_semantics(self):
        column = SortedKeyColumn(np.array([1, 4, 4, 9], dtype=np.int64))
        qb = column.prepare(np.array([3.5, 4.0, 4.5, -0.5]))
        np.testing.assert_array_equal(qb.compare, [4, 4, 5, 0])
        np.testing.assert_array_equal(qb.exactable, [False, True, False, False])

    def test_float_queries_beyond_int64_max(self):
        top = 2**63 - 1
        column = SortedKeyColumn(np.array([0, top], dtype=np.int64))
        qb = column.prepare(np.array([2.0**63, 1e300, float(2**62)]))
        assert qb.oob_high is not None
        np.testing.assert_array_equal(qb.oob_high, [True, True, False])
        # lower bounds: above-max queries land at n even though a key
        # equals the clamp target's neighbourhood
        np.testing.assert_array_equal(
            column.lower_bounds(np.array([2.0**63, 1e300])), [2, 2]
        )

    def test_float_queries_below_int64_min(self):
        column = SortedKeyColumn(np.array([-5, 3], dtype=np.int64))
        pos = column.lower_bounds(np.array([-1e300, -5.5, -5.0]))
        np.testing.assert_array_equal(pos, [0, 0, 0])
        qb = column.prepare(np.array([-1e300]))
        assert not qb.exactable[0]

    def test_nan_queries_do_not_crash(self):
        column = SortedKeyColumn(np.array([1, 2, 3], dtype=np.int64))
        qb = column.prepare(np.array([np.nan, 2.0]))
        assert not qb.exactable[0]
        assert qb.exactable[1]
        column.lower_bounds(np.array([np.nan]))  # position unspecified

    def test_uint64_column_negative_int_queries(self):
        column = SortedKeyColumn(np.array([0, 7], dtype=np.uint64))
        qb = column.prepare(np.array([-3, 0, 7], dtype=np.int64))
        np.testing.assert_array_equal(
            column.lower_bounds(qb), [0, 0, 1]
        )
        np.testing.assert_array_equal(
            column.contains_at(qb, column.lower_bounds(qb)),
            [False, True, True],
        )

    def test_int64_column_uint64_queries_above_max(self):
        top = 2**63 - 1
        column = SortedKeyColumn(np.array([top - 1, top], dtype=np.int64))
        q = np.array([top, 2**63, 2**64 - 1], dtype=np.uint64)
        qb = column.prepare(q)
        np.testing.assert_array_equal(column.lower_bounds(qb), [1, 2, 2])
        np.testing.assert_array_equal(
            column.contains_at(qb, column.lower_bounds(qb)),
            [True, False, False],
        )

    def test_small_int_queries_safe_cast(self):
        column = SortedKeyColumn(np.array([10, 20], dtype=np.int64))
        qb = column.prepare(np.array([15], dtype=np.int32))
        assert qb.compare.dtype == np.int64
        assert qb.exactable is None

    def test_float_column_compares_float64(self):
        column = SortedKeyColumn(np.array([0.5, 1.5], dtype=np.float64))
        qb = column.prepare(np.array([1], dtype=np.int64))
        assert qb.compare.dtype == np.float64
        np.testing.assert_array_equal(column.lower_bounds(qb), [1])

    def test_object_arrays_fall_back_to_float(self):
        column = SortedKeyColumn(np.array([1, 2], dtype=np.int64))
        qb = column.prepare([1, 2.5])
        np.testing.assert_array_equal(qb.compare, [1, 3])


class TestExactPrimitives:
    KEYS = np.array(
        [2**53 - 1, 2**53, 2**53 + 1, 2**63 - 3, 2**63 - 2, 2**63 - 1],
        dtype=np.int64,
    )

    def test_lower_bounds_adjacent_keys(self):
        column = SortedKeyColumn(self.KEYS)
        keys = [int(k) for k in self.KEYS]
        # (2^63 - 1) + 1 overflows int64; build probes in Python space
        probes = np.array(
            [min(k + d, 2**63 - 1) for k in keys for d in (-1, 0, 1)],
            dtype=np.int64,
        )
        expected = [bisect_lb(keys, int(q)) for q in probes]
        np.testing.assert_array_equal(
            column.lower_bounds(probes), expected
        )

    def test_float64_would_collide(self):
        # Sanity: the dataset genuinely exceeds float64 resolution, so
        # the old float64-cast path could not have answered it.
        assert np.unique(self.KEYS.astype(np.float64)).size < self.KEYS.size

    def test_upper_bounds_widening(self):
        keys = np.array([5, 7, 7, 7, 9], dtype=np.int64)
        column = SortedKeyColumn(keys)
        qb = column.prepare(np.array([7.0, 7.5, 6.0]))
        lbs = column.lower_bounds(qb)
        ubs = column.upper_bounds(qb, lbs)
        expected = [bisect.bisect_right([5, 7, 7, 7, 9], q)
                    for q in (7.0, 7.5, 6.0)]
        np.testing.assert_array_equal(ubs, expected)

    def test_upper_bounds_batch_wrapper(self):
        keys = np.array([2**62, 2**62, 2**63 - 1], dtype=np.int64)
        highs = np.array([2**62, 2**63 - 1], dtype=np.int64)
        lbs = np.array([0, 2], dtype=np.int64)
        np.testing.assert_array_equal(
            upper_bounds_batch(keys, highs, lbs), [2, 3]
        )

    def test_rank_in_right_side_float_semantics(self):
        # count of values <= 3.5 equals count of values < 4
        column = SortedKeyColumn(np.empty(0, dtype=np.int64))
        aux = np.array([1, 3, 4, 4, 8], dtype=np.int64)
        qb = column.prepare(np.array([3.5, 4.0, 100.0]))
        np.testing.assert_array_equal(
            column.rank_in(aux, qb, side="right"), [2, 4, 5]
        )
        np.testing.assert_array_equal(
            column.rank_in(aux, qb, side="left"), [2, 2, 5]
        )

    def test_bounded_lower_bounds_matches_searchsorted(self):
        rng = np.random.default_rng(11)
        keys = np.unique(rng.integers(2**62, 2**63 - 1, 3_000))
        column = SortedKeyColumn(keys)
        probes = np.concatenate(
            [rng.choice(keys, 300), rng.choice(keys, 300) + 1]
        )
        qb = column.prepare(probes)
        n = keys.size
        lo = np.zeros(probes.size, dtype=np.int64)
        hi = np.full(probes.size, n, dtype=np.int64)
        pos, fixups = column.bounded_lower_bounds(qb, lo, hi)
        np.testing.assert_array_equal(pos, np.searchsorted(keys, probes))


class TestQueryBatchTake:
    def test_take_preserves_masks(self):
        column = SortedKeyColumn(np.array([1, 5], dtype=np.int64))
        qb = column.prepare(np.array([0.5, 5.0, 2.0**63]))
        sub = qb.take(np.array([0, 2]))
        np.testing.assert_array_equal(sub.compare, [1, qb.compare[2]])
        np.testing.assert_array_equal(sub.exactable, [False, False])
        np.testing.assert_array_equal(sub.oob_high, [False, True])


class TestCompiledPlanMatchesRMI:
    def test_windows_match_scalar_predict(self):
        rng = np.random.default_rng(3)
        keys = np.unique(rng.integers(0, 10**9, 5_000))
        index = RecursiveModelIndex(keys, stage_sizes=(1, 64))
        plan = index._plan
        assert isinstance(plan, CompiledPlan)
        probes = rng.choice(keys, 200).astype(np.float64)
        qb = index._column.prepare(probes)
        lo, hi = plan.windows(qb)
        for i, q in enumerate(probes):
            _est, slo, shi = index.predict(float(q))
            assert (lo[i], hi[i]) == (slo, shi)

    def test_plan_is_the_only_batch_engine(self):
        # The RMI's batch surface must be a thin adapter: no local
        # implementation of the bounded search or window widening.
        import inspect

        import repro.core.rmi as rmi_mod

        src = inspect.getsource(rmi_mod)
        assert "vectorized_bounded_search(" not in src
        assert "np.unique(queries, return_inverse" not in src

    def test_plan_lookup_sorted_identical(self):
        keys = np.unique(
            np.random.default_rng(5).integers(2**62, 2**63 - 2, 4_000)
        )
        index = RecursiveModelIndex(keys, stage_sizes=(1, 32))
        probes = np.concatenate([keys[::3], keys[::3] + 1, keys[:5]])
        np.testing.assert_array_equal(
            index.lookup_batch(probes, sort=True),
            index.lookup_batch(probes, sort=False),
        )


class TestEmptyColumn:
    def test_empty_column_all_primitives(self):
        column = SortedKeyColumn(np.empty(0, dtype=np.int64))
        qb = column.prepare(np.array([1.0, 2.0]))
        np.testing.assert_array_equal(column.lower_bounds(qb), [0, 0])
        np.testing.assert_array_equal(
            column.contains_at(qb, np.zeros(2, dtype=np.int64)),
            [False, False],
        )
        np.testing.assert_array_equal(
            column.upper_bounds(qb, np.zeros(2, dtype=np.int64)), [0, 0]
        )
