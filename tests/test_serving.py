"""Serving-layer unit tests: coalescer edge cases, CDF splitter,
CRC32C fallback, backup/restore, and real pread accounting (ISSUE 8).

The sharded-store integration tests (worker processes, shared memory)
live in ``test_sharded.py``; everything here runs in-process.
"""

from __future__ import annotations

import asyncio
import glob
import os
import zlib

import numpy as np
import pytest

from repro.core.paged import FilePageStore
from repro.lsm.faultfs import RealFileSystem
from repro.lsm.format import (
    ALGO_CRC32C,
    _HAVE_CRC32C,
    checksum,
    crc32c,
    software_crc32c,
)
from repro.lsm.paged_runs import paged_index_over_run
from repro.lsm.store import LearnedLSMStore
from repro.serving import CoalescingIndexServer, CDFSplitter
from repro.serving.coalescer import CoalescerStats


# ---------------------------------------------------------------------------
# CDF splitter
# ---------------------------------------------------------------------------


class TestCDFSplitter:
    def test_fit_balances_skewed_keys(self, lognormal_small):
        split = CDFSplitter.fit(lognormal_small, 4)
        counts = np.bincount(
            split.shard_of_batch(lognormal_small), minlength=4
        )
        # Quantile boundaries put ~1/4 of the mass per shard even on a
        # heavy-tailed distribution (a fixed-width split would not).
        assert counts.min() >= 0.8 * lognormal_small.size / 4
        assert counts.max() <= 1.2 * lognormal_small.size / 4

    def test_uniform_fallback_covers_domain(self):
        split = CDFSplitter.uniform(4)
        keys = np.array(
            [-(2**63), -1, 0, 2**63 - 1], dtype=np.int64
        )
        shards = split.shard_of_batch(keys)
        assert shards[0] == 0 and shards[-1] == 3
        assert np.all((shards >= 0) & (shards < 4))

    def test_intervals_partition_and_match_routing(self, uniform_small):
        split = CDFSplitter.fit(uniform_small, 3)
        shards = split.shard_of_batch(uniform_small)
        for shard in range(3):
            lo, hi = split.shard_interval(shard)
            mask = shards == shard
            if mask.any():
                owned = uniform_small[mask]
                assert owned.min() >= lo and owned.max() <= hi
        # Intervals tile the domain with no gap or overlap.
        for shard in range(2):
            assert (
                split.shard_interval(shard)[1] + 1
                == split.shard_interval(shard + 1)[0]
            )

    def test_shards_overlapping(self, uniform_small):
        split = CDFSplitter.fit(uniform_small, 4)
        b = split.boundaries
        lows = np.array(
            [int(b[0]), int(b[0]), 10, 10], dtype=np.int64
        )
        highs = np.array(
            [int(b[2]), int(b[0]), 5, int(b[2]) - 1], dtype=np.int64
        )
        overlap = split.shards_overlapping(lows, highs)
        assert overlap.shape == (4, 4)
        # Range 0 spans shards 1..3's start; range 1 is a point on a
        # boundary key (owned by the right shard); range 2 inverted.
        assert list(np.nonzero(overlap[:, 0])[0]) == [1, 2, 3]
        assert list(np.nonzero(overlap[:, 1])[0]) == [1]
        assert not overlap[:, 2].any()
        assert overlap[:, 3].any()

    def test_empty_sample_and_bad_args(self):
        split = CDFSplitter.fit(np.empty(0, dtype=np.int64), 3)
        assert split.num_shards == 3
        with pytest.raises(ValueError):
            CDFSplitter(np.array([2, 1], dtype=np.int64), 3)
        with pytest.raises(ValueError):
            CDFSplitter(np.array([1], dtype=np.int64), 3)
        with pytest.raises(ValueError):
            CDFSplitter.fit([1, 2, 3], 0)

    def test_single_shard(self):
        split = CDFSplitter.fit([5, 6, 7], 1)
        assert split.shard_of_batch([-(2**63), 0, 2**63 - 1]).max() == 0


# ---------------------------------------------------------------------------
# Coalescer
# ---------------------------------------------------------------------------


class _CountingStore:
    """In-memory store recording every batch call it receives."""

    def __init__(self, keys, values):
        self._keys = np.asarray(keys, dtype=np.int64)
        self._values = np.asarray(values, dtype=np.int64)
        self.point_calls: list[int] = []
        self.range_calls: list[int] = []

    def lookup_batch(self, keys):
        queries = np.asarray(keys, dtype=np.int64).ravel()
        self.point_calls.append(int(queries.size))
        pos = np.searchsorted(self._keys, queries)
        pos = np.minimum(pos, self._keys.size - 1)
        found = (
            (self._keys.size > 0) & (self._keys[pos] == queries)
        )
        return np.where(found, self._values[pos], 0), found

    def range_query_batch(self, lows, highs):
        from repro.range_scan import RangeScanResult

        lows = np.asarray(lows, dtype=np.int64)
        highs = np.asarray(highs, dtype=np.int64)
        self.range_calls.append(int(lows.size))
        starts = np.searchsorted(self._keys, lows, side="left")
        ends = np.searchsorted(self._keys, highs, side="right")
        ends = np.maximum(ends, starts)
        offsets = np.zeros(lows.size + 1, dtype=np.int64)
        np.cumsum(ends - starts, out=offsets[1:])
        values = (
            np.concatenate(
                [self._keys[s:e] for s, e in zip(starts, ends)]
            )
            if lows.size
            else np.empty(0, dtype=np.int64)
        )
        return RangeScanResult(values=values, offsets=offsets)


class _PoisonStore(_CountingStore):
    """Raises whenever a designated key appears in a batch."""

    def __init__(self, keys, values, poison: int):
        super().__init__(keys, values)
        self.poison = poison

    def lookup_batch(self, keys):
        queries = np.asarray(keys, dtype=np.int64).ravel()
        if np.any(queries == self.poison):
            self.point_calls.append(int(queries.size))
            raise RuntimeError("poisoned request")
        return super().lookup_batch(queries)


@pytest.fixture()
def kv():
    keys = np.arange(0, 10_000, 7, dtype=np.int64)
    return keys, keys * 3


class TestCoalescer:
    def test_concurrent_lookups_become_one_batch(self, kv):
        keys, values = kv
        store = _CountingStore(keys, values)

        async def main():
            srv = CoalescingIndexServer(store)
            sample = keys[100:164]
            results = await asyncio.gather(
                *(srv.lookup(int(k)) for k in sample)
            )
            assert results == [int(k) * 3 for k in sample]
            return srv.stats

        stats = asyncio.run(main())
        # 64 requests, one store call of 64 keys.
        assert store.point_calls == [64]
        assert stats.requests_served == 64
        assert stats.mean_point_batch() == 64.0

    def test_mixed_hits_misses_and_ranges(self, kv):
        keys, values = kv
        store = _CountingStore(keys, values)

        async def main():
            srv = CoalescingIndexServer(store)
            hit, miss = int(keys[5]), int(keys[5]) + 1
            v_hit, v_miss, scan = await asyncio.gather(
                srv.lookup(hit),
                srv.lookup(miss),
                srv.range_query(int(keys[10]), int(keys[20])),
            )
            assert v_hit == hit * 3
            assert v_miss is None
            assert np.array_equal(scan, keys[10:21])

        asyncio.run(main())
        assert store.point_calls == [2]
        assert store.range_calls == [1]

    def test_range_batches_coalesce_and_slice_back(self, kv):
        keys, values = kv
        store = _CountingStore(keys, values)

        async def main():
            srv = CoalescingIndexServer(store)
            r1, r2 = await asyncio.gather(
                srv.range_query_batch(
                    [int(keys[0]), int(keys[50])],
                    [int(keys[5]), int(keys[52])],
                ),
                srv.range_query_batch(
                    [int(keys[100])], [int(keys[110])]
                ),
            )
            assert np.array_equal(r1[0], keys[0:6])
            assert np.array_equal(r1[1], keys[50:53])
            assert np.array_equal(r2[0], keys[100:111])

        asyncio.run(main())
        # 2 + 1 ranges coalesced into one 3-range store call.
        assert store.range_calls == [3]

    def test_max_batch_splits_at_request_granularity(self, kv):
        keys, values = kv
        store = _CountingStore(keys, values)

        async def main():
            srv = CoalescingIndexServer(store, max_batch=8)
            reqs = [keys[i * 3:(i + 1) * 3] for i in range(5)]
            results = await asyncio.gather(
                *(srv.lookup_batch(r) for r in reqs)
            )
            for r, (vals, found) in zip(reqs, results):
                assert found.all()
                assert np.array_equal(vals, r * 3)

        asyncio.run(main())
        # 5 requests x 3 keys with max_batch=8: chunks of 6, 6, 3 —
        # never a request split across store calls.
        assert store.point_calls == [6, 6, 3]

    def test_oversized_request_forms_own_chunk(self, kv):
        keys, values = kv
        store = _CountingStore(keys, values)

        async def main():
            srv = CoalescingIndexServer(store, max_batch=4)
            big = keys[:10]
            (vals, found), small = await asyncio.gather(
                srv.lookup_batch(big), srv.lookup(int(keys[0]))
            )
            assert found.all() and np.array_equal(vals, big * 3)
            assert small == int(keys[0]) * 3

        asyncio.run(main())
        assert sorted(store.point_calls) == [1, 10]

    def test_exception_isolated_to_poisoned_request(self, kv):
        keys, values = kv
        poison = int(keys.max()) + 1000
        store = _PoisonStore(keys, values, poison)

        async def main():
            srv = CoalescingIndexServer(store)
            good = [srv.lookup(int(k)) for k in keys[:3]]
            bad = srv.lookup(poison)
            results = await asyncio.gather(
                *good, bad, return_exceptions=True
            )
            assert results[:3] == [int(k) * 3 for k in keys[:3]]
            assert isinstance(results[3], RuntimeError)
            return srv.stats

        stats = asyncio.run(main())
        # One failed 4-key batch, then 4 solo fallback calls of which
        # only the poisoned one raised.
        assert store.point_calls[0] == 4
        assert stats.fallback_requests == 4
        assert stats.requests_served == 3

    def test_cancellation_mid_window(self, kv):
        keys, values = kv
        store = _CountingStore(keys, values)

        async def main():
            srv = CoalescingIndexServer(store, max_wait=0.05)
            doomed = asyncio.ensure_future(srv.lookup(int(keys[0])))
            kept = asyncio.ensure_future(srv.lookup(int(keys[1])))
            await asyncio.sleep(0.005)  # inside the window
            doomed.cancel()
            assert await kept == int(keys[1]) * 3
            with pytest.raises(asyncio.CancelledError):
                await doomed
            return srv.stats

        stats = asyncio.run(main())
        # The cancelled request never reached the store.
        assert store.point_calls == [1]
        assert stats.requests_cancelled == 1

    def test_client_timeout_then_recovery(self, kv):
        keys, values = kv
        store = _CountingStore(keys, values)

        async def main():
            srv = CoalescingIndexServer(store, max_wait=0.2)
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(
                    srv.lookup(int(keys[0])), timeout=0.01
                )
            # The server stays healthy for later clients.
            assert await srv.lookup(int(keys[1])) == int(keys[1]) * 3
            return srv.stats

        stats = asyncio.run(main())
        assert stats.requests_cancelled == 1
        assert stats.requests_served == 1

    def test_all_cancelled_is_empty_tick(self, kv):
        keys, values = kv
        store = _CountingStore(keys, values)

        async def main():
            srv = CoalescingIndexServer(store, max_wait=0.02)
            tasks = [
                asyncio.ensure_future(srv.lookup(int(k)))
                for k in keys[:4]
            ]
            await asyncio.sleep(0)
            for t in tasks:
                t.cancel()
            await asyncio.sleep(0.05)  # let the window expire
            return srv.stats

        stats = asyncio.run(main())
        # Flush ran, found only corpses, and never touched the store.
        assert store.point_calls == []
        assert stats.empty_ticks >= 1
        assert stats.requests_cancelled == 4

    def test_max_wait_window_accumulates_stragglers(self, kv):
        keys, values = kv
        store = _CountingStore(keys, values)

        async def main():
            srv = CoalescingIndexServer(store, max_wait=0.1)
            tasks = []
            for k in keys[:3]:
                tasks.append(
                    asyncio.ensure_future(srv.lookup(int(k)))
                )
                await asyncio.sleep(0.005)  # staggered arrivals
            results = await asyncio.gather(*tasks)
            assert results == [int(k) * 3 for k in keys[:3]]

        asyncio.run(main())
        # All three staggered arrivals landed in one window.
        assert store.point_calls == [3]

    def test_full_window_flushes_before_timer(self, kv):
        keys, values = kv
        store = _CountingStore(keys, values)

        async def main():
            srv = CoalescingIndexServer(
                store, max_wait=10.0, max_batch=2
            )
            # Without the overflow flush this would wait 10 seconds.
            results = await asyncio.wait_for(
                asyncio.gather(
                    srv.lookup(int(keys[0])), srv.lookup(int(keys[1]))
                ),
                timeout=1.0,
            )
            assert results == [int(keys[0]) * 3, int(keys[1]) * 3]

        asyncio.run(main())
        assert store.point_calls == [2]

    def test_bad_args(self, kv):
        keys, values = kv
        store = _CountingStore(keys, values)
        with pytest.raises(ValueError):
            CoalescingIndexServer(store, max_wait=-1)
        with pytest.raises(ValueError):
            CoalescingIndexServer(store, max_batch=0)

        async def main():
            srv = CoalescingIndexServer(store)
            with pytest.raises(ValueError):
                await srv.range_query_batch([1, 2], [3])

        asyncio.run(main())

    def test_works_against_real_lsm_store(self, kv):
        keys, values = kv
        with LearnedLSMStore(keys, values, background=False) as store:

            async def main():
                srv = CoalescingIndexServer(store)
                sample = keys[::500]
                results = await asyncio.gather(
                    *(srv.lookup(int(k)) for k in sample),
                    srv.range_query(int(keys[0]), int(keys[30])),
                )
                assert results[:-1] == [int(k) * 3 for k in sample]
                assert np.array_equal(results[-1], keys[:31])

            asyncio.run(main())


# ---------------------------------------------------------------------------
# CRC32C software fallback
# ---------------------------------------------------------------------------


def _bitwise_crc32c(data: bytes) -> int:
    """Textbook reflected CRC-32C — the slow oracle the sliced
    implementation must match bit-for-bit."""
    crc = 0xFFFFFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            crc = (crc >> 1) ^ (0x82F63B78 if crc & 1 else 0)
    return crc ^ 0xFFFFFFFF


class TestCRC32C:
    # RFC 3720 appendix B.4 test vectors.
    VECTORS = [
        (b"123456789", 0xE3069283),
        (bytes(32), 0x8A9136AA),
        (b"\xff" * 32, 0x62A8AB43),
        (bytes(range(32)), 0x46DD794E),
    ]

    @pytest.mark.parametrize("data,expect", VECTORS)
    def test_rfc3720_vectors(self, data, expect):
        assert software_crc32c(data) == expect
        assert crc32c(data) == expect

    def test_matches_bitwise_oracle(self, rng):
        for size in (0, 1, 7, 8, 9, 63, 64, 65, 1000):
            data = rng.integers(0, 256, size, dtype=np.uint8).tobytes()
            assert software_crc32c(data) == _bitwise_crc32c(data), size

    @pytest.mark.skipif(
        not _HAVE_CRC32C, reason="crc32c wheel not installed"
    )
    def test_matches_wheel(self, rng):  # pragma: no cover - needs wheel
        import crc32c as wheel

        data = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        assert software_crc32c(data) == wheel.crc32c(data)

    def test_checksum_dispatch_uses_crc32c(self):
        data = b"123456789"
        assert checksum(data, ALGO_CRC32C) == 0xE3069283
        assert checksum(data, ALGO_CRC32C) != (
            zlib.crc32(data) & 0xFFFFFFFF
        )

    def test_accepts_memoryview_and_arrays(self):
        arr = np.arange(32, dtype=np.uint8)
        assert software_crc32c(memoryview(arr)) == 0x46DD794E

    def test_store_round_trip_under_crc32c_env(self, tmp_path):
        """A store written with REPRO_CHECKSUM=crc32c verifies and
        reopens — the fallback is a fully working writer too."""
        import repro.lsm.format as fmt

        old = fmt._DEFAULT_ALGO
        fmt._DEFAULT_ALGO = ALGO_CRC32C
        try:
            keys = np.arange(0, 2_000, dtype=np.int64)
            with LearnedLSMStore(
                keys, keys * 2, path=str(tmp_path), background=False
            ) as store:
                store.flush()
            with LearnedLSMStore(
                path=str(tmp_path), background=False
            ) as store:
                values, found = store.lookup_batch(keys[::97])
                assert found.all()
                assert np.array_equal(values, keys[::97] * 2)
        finally:
            fmt._DEFAULT_ALGO = old


# ---------------------------------------------------------------------------
# Backup / restore
# ---------------------------------------------------------------------------


class TestBackup:
    def _fill(self, store, keys):
        store.insert_batch(keys, keys * 5)
        store.delete_batch(keys[::10])
        store.flush()

    def test_backup_restores_identically(self, tmp_path):
        keys = np.arange(0, 30_000, 3, dtype=np.int64)
        src_dir, dst_dir = tmp_path / "src", tmp_path / "dst"
        with LearnedLSMStore(
            path=str(src_dir), background=False,
            memtable_capacity=4_096,
        ) as store:
            self._fill(store, keys)
            # Unflushed tail rides the WAL copy.
            store.insert_batch(
                np.array([10**9, 10**9 + 1], dtype=np.int64)
            )
            store.backup(str(dst_dir))
            expect_v, expect_f = store.lookup_batch(keys)

        with LearnedLSMStore(
            path=str(dst_dir), background=False
        ) as restored:
            values, found = restored.lookup_batch(keys)
            assert np.array_equal(found, expect_f)
            assert np.array_equal(values[found], expect_v[found])
            v, f = restored.lookup_batch(
                np.array([10**9, 10**9 + 1], dtype=np.int64)
            )
            assert f.all(), "WAL tail lost in backup"

    def test_backup_isolated_from_later_writes(self, tmp_path):
        keys = np.arange(0, 10_000, dtype=np.int64)
        src_dir, dst_dir = tmp_path / "src", tmp_path / "dst"
        with LearnedLSMStore(
            path=str(src_dir), background=False,
            memtable_capacity=2_048,
        ) as store:
            self._fill(store, keys)
            store.backup(str(dst_dir))
            # Mutate the source heavily after the backup: overwrites,
            # seals, and a full compaction (new inodes via rename).
            store.insert_batch(keys, keys * 999)
            store.flush()
            store.compact()

        with LearnedLSMStore(
            path=str(dst_dir), background=False
        ) as restored:
            probe = keys[1:100]
            values, found = restored.lookup_batch(probe)
            deleted = probe % 10 == 0
            assert np.array_equal(found, ~deleted)
            assert np.array_equal(values[found], probe[~deleted] * 5)

    def test_backup_refuses_bad_destinations(self, tmp_path):
        keys = np.arange(100, dtype=np.int64)
        src_dir = tmp_path / "src"
        with LearnedLSMStore(
            path=str(src_dir), background=False
        ) as store:
            store.insert_batch(keys)
            store.flush()
            with pytest.raises(ValueError):
                store.backup(str(src_dir))
            busy = tmp_path / "busy"
            busy.mkdir()
            (busy / "junk").write_text("x")
            with pytest.raises(ValueError):
                store.backup(str(busy))

    def test_memory_store_cannot_backup(self, tmp_path):
        with LearnedLSMStore(background=False) as store:
            with pytest.raises(ValueError):
                store.backup(str(tmp_path / "d"))

    def test_backup_is_hard_links_not_copies(self, tmp_path):
        keys = np.arange(0, 50_000, dtype=np.int64)
        src_dir, dst_dir = tmp_path / "src", tmp_path / "dst"
        with LearnedLSMStore(
            path=str(src_dir), background=False
        ) as store:
            store.insert_batch(keys)
            store.flush()
            store.backup(str(dst_dir))
        run_names = [
            os.path.basename(p)
            for p in glob.glob(str(dst_dir / "run-*.run"))
        ]
        assert run_names, "backup contains no runs"
        for name in run_names:
            assert os.path.samefile(
                str(src_dir / name), str(dst_dir / name)
            ), "run was copied, not linked"


# ---------------------------------------------------------------------------
# Real pread accounting over run files
# ---------------------------------------------------------------------------


class TestPreadAccounting:
    @pytest.fixture()
    def run_file(self, tmp_path):
        keys = np.arange(0, 200_000, 4, dtype=np.int64)
        with LearnedLSMStore(
            keys, keys, path=str(tmp_path), background=False
        ) as store:
            store.compact()
        paths = glob.glob(str(tmp_path / "run-*.run"))
        assert len(paths) == 1
        return np.asarray(keys), paths[0]

    def test_preads_counted_and_results_exact(self, run_file, rng):
        keys, path = run_file
        index = paged_index_over_run(RealFileSystem(), path)
        try:
            store = index.store
            assert isinstance(store, FilePageStore)
            queries = rng.choice(keys, 512, replace=False)
            positions = index.lookup_batch(queries)
            assert np.array_equal(
                positions, np.searchsorted(keys, queries)
            )
            cold = store.preads
            assert cold > 0
            assert store.bytes_read >= cold * 8

            # Same batch again: the tiny page buffer plus the OS cache
            # still issues preads, but drop_cache + reset shows the
            # cold/warm asymmetry explicitly.
            store.reset_io()
            index.lookup_batch(queries)
            warm = store.preads
            assert warm <= cold

            store.drop_cache()
            store.reset_io()
            index.lookup_batch(queries)
            assert store.preads >= warm
        finally:
            index.store.close()

    def test_sequential_batch_buffers_pages(self, run_file):
        keys, path = run_file
        index = paged_index_over_run(
            RealFileSystem(), path, page_size=512
        )
        try:
            store = index.store
            index.lookup_batch(keys[:2048])  # 4 pages, sequential
            # Batched page fetches coalesce: far fewer preads than
            # queries.
            assert store.preads <= 8
        finally:
            index.store.close()

    def test_partial_reads_fetch_fewer_bytes(self, run_file, rng):
        keys, path = run_file
        fs = RealFileSystem()
        full = paged_index_over_run(fs, path, partial_reads=False)
        partial = paged_index_over_run(fs, path, partial_reads=True)
        try:
            # Partial clipping applies on the scalar path only.
            queries = rng.choice(keys, 64, replace=False)
            expect = np.searchsorted(keys, queries)
            for q, pos in zip(queries.tolist(), expect.tolist()):
                page, slot = full.lookup(q)
                assert page * full.page_size + slot == pos
                page, slot = partial.lookup(q)
                assert page * partial.page_size + slot == pos
            assert (
                partial.store.bytes_read < full.store.bytes_read
            ), "partial preads should touch fewer bytes"
        finally:
            full.store.close()
            partial.store.close()

    def test_close_then_read_raises(self, run_file):
        _keys, path = run_file
        index = paged_index_over_run(RealFileSystem(), path)
        index.store.close()
        with pytest.raises((ValueError, OSError)):
            index.lookup_batch(np.array([0], dtype=np.int64))


class TestCoalescerStatsShape:
    def test_defaults(self):
        stats = CoalescerStats()
        assert stats.mean_point_batch() == 0.0
        assert stats.ticks == 0
