"""Unit tests for the in-place chained hash map (Appendix C)."""

import numpy as np
import pytest

from repro.core import LearnedHashFunction
from repro.hashmap import InPlaceChainedHashMap, RandomHashFunction


@pytest.fixture()
def kv(rng):
    keys = np.unique(rng.integers(0, 10**12, size=5_000))
    values = rng.integers(0, 10**9, size=keys.size)
    return keys, values


class TestBuildAndLookup:
    def test_full_utilization(self, kv):
        keys, values = kv
        hm = InPlaceChainedHashMap(
            keys, values, RandomHashFunction(keys.size, seed=2)
        )
        assert hm.utilization == 1.0

    def test_roundtrip(self, kv):
        keys, values = kv
        hm = InPlaceChainedHashMap(
            keys, values, RandomHashFunction(keys.size, seed=2)
        )
        for i in range(0, keys.size, 41):
            assert hm.get(int(keys[i])) == int(values[i])

    def test_missing_keys(self, kv):
        keys, values = kv
        hm = InPlaceChainedHashMap(
            keys, values, RandomHashFunction(keys.size, seed=2)
        )
        assert hm.get(int(keys.max()) + 1) is None
        assert hm.get(int(keys.min()) - 1) is None

    def test_extra_slots_allowed(self, kv):
        keys, values = kv
        hm = InPlaceChainedHashMap(
            keys,
            values,
            RandomHashFunction(int(keys.size * 1.25), seed=2),
            num_slots=int(keys.size * 1.25),
        )
        for i in range(0, keys.size, 97):
            assert hm.get(int(keys[i])) == int(values[i])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            InPlaceChainedHashMap(
                np.array([1, 1]), np.array([2, 3]), lambda k: 0, num_slots=4
            )

    def test_rejects_too_few_slots(self, kv):
        keys, values = kv
        with pytest.raises(ValueError):
            InPlaceChainedHashMap(keys, values, lambda k: 0, num_slots=10)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            InPlaceChainedHashMap(
                np.array([1, 2]), np.array([1]), lambda k: 0
            )


class TestHashQualityAffectsProbesNotSize:
    def test_size_independent_of_hash(self, maps_small):
        keys = maps_small
        values = np.arange(keys.size)
        learned = InPlaceChainedHashMap(
            keys,
            values,
            LearnedHashFunction(keys, keys.size, stage_sizes=(1, keys.size // 10)),
        )
        random_map = InPlaceChainedHashMap(
            keys, values, RandomHashFunction(keys.size, seed=1)
        )
        # Appendix C: "the quality of the learned hash function can only
        # make an impact on the performance not the size"
        assert learned.size_bytes() == random_map.size_bytes()

    def test_learned_hash_needs_fewer_probes(self, maps_small, rng):
        keys = maps_small
        values = np.arange(keys.size)
        learned = InPlaceChainedHashMap(
            keys,
            values,
            LearnedHashFunction(keys, keys.size, stage_sizes=(1, keys.size // 10)),
        )
        random_map = InPlaceChainedHashMap(
            keys, values, RandomHashFunction(keys.size, seed=1)
        )
        sample = rng.choice(keys, 2_000)
        assert learned.mean_probes_per_hit(sample) < random_map.mean_probes_per_hit(
            sample
        )

    def test_conflict_fraction_reported(self, kv):
        keys, values = kv
        hm = InPlaceChainedHashMap(
            keys, values, RandomHashFunction(keys.size, seed=2)
        )
        # random hashing: ~1/e of keys displaced in pass 1
        assert hm.conflict_fraction == pytest.approx(1 / np.e, abs=0.05)
