"""Unit tests for the cost model, timing harness and table rendering."""

import numpy as np
import pytest

from repro.bench import (
    DEFAULT_COST_MODEL,
    CostModel,
    Table,
    factor,
    format_bytes,
    measure_callable,
    measure_lookups,
    percentage,
)


class TestCostModel:
    def test_btree_cost_grows_with_height(self):
        shallow = DEFAULT_COST_MODEL.btree_lookup(2, 128, 10_000)
        deep = DEFAULT_COST_MODEL.btree_lookup(5, 128, 10_000)
        assert deep.total_ns > shallow.total_ns

    def test_large_btree_pays_cache_misses(self):
        hot = DEFAULT_COST_MODEL.btree_lookup(3, 128, 100_000)
        cold = DEFAULT_COST_MODEL.btree_lookup(3, 128, 100_000_000)
        assert cold.cache_miss_cycles > hot.cache_miss_cycles

    def test_learned_beats_btree_at_paper_scale(self):
        """Section 2.1's headline: a small model + bounded search beats
        a deep cached B-Tree."""
        btree = DEFAULT_COST_MODEL.btree_lookup(
            4, 128, 13 * 1024 * 1024
        )  # Figure 4's 13MB page-128 tree
        learned = DEFAULT_COST_MODEL.learned_lookup(
            model_ops=8, mean_window=200, size_bytes=150_000
        )
        assert learned.total_ns < btree.total_ns

    def test_model_share_reported(self):
        est = DEFAULT_COST_MODEL.learned_lookup(8, 100, 10_000)
        assert 0 < est.model_ns < est.total_ns

    def test_binary_search_scales_logarithmically(self):
        small = DEFAULT_COST_MODEL.binary_search_lookup(10**4)
        big = DEFAULT_COST_MODEL.binary_search_lookup(10**8)
        assert big.total_ns > small.total_ns
        assert big.total_ns < small.total_ns * 20

    def test_framework_overhead_dominates(self):
        """Section 2.3: ~80,000ns with Tensorflow vs ~300ns B-Tree."""
        framework = DEFAULT_COST_MODEL.framework_model_lookup(2_000)
        btree = DEFAULT_COST_MODEL.btree_lookup(4, 128, 13 * 1024 * 1024)
        assert framework.total_ns > 100 * btree.total_ns

    def test_custom_constants(self):
        slow_clock = CostModel(clock_ghz=1.0)
        fast_clock = CostModel(clock_ghz=4.0)
        slow = slow_clock.btree_lookup(3, 128, 10_000)
        fast = fast_clock.btree_lookup(3, 128, 10_000)
        assert slow.total_ns > fast.total_ns


class TestTimingHarness:
    def test_measure_callable(self):
        total = {"count": 0}

        def work():
            total["count"] += 1

        ns = measure_callable(work, repeats=3, inner=10)
        assert ns >= 0
        assert total["count"] == 30

    def test_measure_lookups(self):
        keys = np.arange(1000)

        def lookup(q):
            return int(np.searchsorted(keys, q))

        result = measure_lookups(lookup, list(range(0, 1000, 10)), repeats=2)
        assert result.mean_ns > 0
        assert result.p50_ns > 0
        assert result.operations == 100

    def test_measure_lookups_rejects_empty(self):
        with pytest.raises(ValueError):
            measure_lookups(lambda q: q, [])


class TestTables:
    def test_format_bytes(self):
        assert format_bytes(13.11 * 1024 * 1024) == "13.11 MB"
        assert format_bytes(2048) == "2.0 KB"
        assert format_bytes(12) == "12 B"

    def test_factor(self):
        assert factor(52.45, 13.11) == "(4.00x)"
        assert factor(1.0, 0.0) == "(n/a)"

    def test_percentage(self):
        assert percentage(198, 274) == "(72.3%)"
        assert percentage(1, 0) == "(n/a)"

    def test_table_rendering(self):
        table = Table("Demo", ["config", "value"])
        table.add_row("a", 1)
        table.add_row("bb", 22)
        out = table.render()
        assert "Demo" in out
        assert "config" in out
        assert "22" in out

    def test_table_rejects_bad_row(self):
        table = Table("Demo", ["one", "two"])
        with pytest.raises(ValueError):
            table.add_row("only-one")
