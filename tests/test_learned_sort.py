"""Unit tests for learned sorting (Section 7, Beyond Indexing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import learned_sort, train_cdf_model_on_sample


class TestCorrectness:
    @pytest.mark.parametrize("n", [0, 1, 2, 100, 10_000])
    def test_sorts_uniform(self, n):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 1e9, size=n)
        np.testing.assert_array_equal(learned_sort(values), np.sort(values))

    def test_sorts_lognormal(self):
        rng = np.random.default_rng(1)
        values = rng.lognormal(0, 2, size=20_000)
        np.testing.assert_array_equal(learned_sort(values), np.sort(values))

    def test_sorts_with_duplicates(self):
        rng = np.random.default_rng(2)
        values = rng.integers(0, 50, size=5_000).astype(np.float64)
        np.testing.assert_array_equal(learned_sort(values), np.sort(values))

    def test_sorts_constant(self):
        values = np.full(1_000, 7.0)
        np.testing.assert_array_equal(learned_sort(values), values)

    def test_input_not_modified(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(size=1_000)
        snapshot = values.copy()
        learned_sort(values)
        np.testing.assert_array_equal(values, snapshot)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(-1e9, 1e9),
            min_size=0,
            max_size=300,
        )
    )
    def test_property_matches_numpy(self, values):
        arr = np.array(values)
        np.testing.assert_array_equal(learned_sort(arr), np.sort(arr))


class TestEfficiency:
    def test_good_model_means_little_repair_work(self):
        """The Section 7 claim: a good CDF model leaves O(1)
        displacement per key for the correction pass."""
        rng = np.random.default_rng(4)
        values = rng.uniform(0, 1e9, size=50_000)
        _out, stats = learned_sort(values, return_stats=True)
        assert stats.displacement_per_key < 10.0

    def test_better_model_less_work(self):
        rng = np.random.default_rng(5)
        values = rng.lognormal(0, 2, size=30_000)
        good = train_cdf_model_on_sample(values, sample_size=4_096, knots=128)
        bad = train_cdf_model_on_sample(values, sample_size=16, knots=2)
        _o1, good_stats = learned_sort(values, model=good, return_stats=True)
        _o2, bad_stats = learned_sort(values, model=bad, return_stats=True)
        assert good_stats.insertion_shifts < bad_stats.insertion_shifts

    def test_stats_shape(self):
        out, stats = learned_sort(np.array([3.0, 1.0, 2.0]), return_stats=True)
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])
        assert stats.n == 3
        assert stats.insertion_shifts >= 0


class TestSampleModel:
    def test_monotone(self):
        rng = np.random.default_rng(6)
        values = rng.lognormal(0, 2, size=5_000)
        model = train_cdf_model_on_sample(values)
        grid = np.linspace(values.min(), values.max(), 500)
        predictions = model.predict_batch(grid)
        assert np.all(np.diff(predictions) >= -1e-12)

    def test_constant_input(self):
        model = train_cdf_model_on_sample(np.full(100, 5.0))
        assert np.isfinite(model.predict(5.0))

    def test_empty_input(self):
        model = train_cdf_model_on_sample(np.array([]))
        assert model.predict(1.0) == 0.0
