"""Durability layer tests (ISSUE 6): on-disk formats, WAL, manifest,
persistent store lifecycle, and the corruption-detection matrix.

The crash-schedule sweep lives in ``test_crash_recovery.py``; this file
covers the deterministic half of the durability contract — bit-exact
round trips, O(metadata) reopen, and the promise that a flipped byte in
*any* file section surfaces as :class:`CorruptRunError` (or recovers to
the last consistent state) instead of a wrong answer.
"""

import os

import numpy as np
import pytest

from repro.bloom import BloomFilter
from repro.lsm import (
    CorruptRunError,
    FaultInjectingFilesystem,
    LearnedLSMStore,
    MANIFEST_NAME,
    RealFileSystem,
    SimulatedCrash,
    SortedRun,
    WriteAheadLog,
    commit_manifest,
    flip_byte,
    learned_bloom_factory,
    load_manifest,
)
from repro.lsm.format import RUN_MAGIC, SectionFile, write_section_file
from repro.lsm.run import LearnedBloomGuard
from repro.lsm.wal import replay as wal_replay


@pytest.fixture
def fs():
    return RealFileSystem()


def _example_run(n=4_000, tombstone_every=7, seed=3):
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(0, 1 << 62, size=n, dtype=np.int64))
    values = rng.integers(0, 1 << 62, size=keys.size, dtype=np.int64)
    dead = np.zeros(keys.size, dtype=bool)
    dead[::tombstone_every] = True
    return SortedRun(keys, values, dead, sequence=9, level=2)


# -- section-file format -------------------------------------------------------


class TestSectionFile:
    def test_round_trip_arrays_bytes_and_meta(self, fs, tmp_path):
        path = str(tmp_path / "file.bin")
        keys = np.arange(100, dtype=np.int64) * 3
        floats = np.array([0.1, 2.5e-17, 1e300])
        write_section_file(
            fs,
            path,
            magic=RUN_MAGIC,
            meta={"n": 100, "slope": 1.0000000000000002e-05},
            sections=[("keys", keys), ("floats", floats), ("blob", b"xyz")],
        )
        reader = SectionFile(fs, path, magic=RUN_MAGIC)
        # JSON float64 round trip is exact (shortest repr).
        assert reader.meta["slope"] == 1.0000000000000002e-05
        assert np.array_equal(reader.array("keys"), keys)
        assert np.array_equal(reader.array("floats"), floats)
        assert reader.read("blob") == b"xyz"

    def test_empty_section(self, fs, tmp_path):
        path = str(tmp_path / "file.bin")
        write_section_file(
            fs, path, magic=RUN_MAGIC, meta={},
            sections=[("empty", np.empty(0, dtype=np.int64))],
        )
        arr = SectionFile(fs, path, magic=RUN_MAGIC).array("empty")
        assert arr.size == 0 and arr.dtype == np.int64

    def test_bad_magic(self, fs, tmp_path):
        path = str(tmp_path / "file.bin")
        write_section_file(fs, path, magic=b"XXXX", meta={}, sections=[])
        with pytest.raises(CorruptRunError, match="magic"):
            SectionFile(fs, path, magic=RUN_MAGIC)

    def test_missing_section(self, fs, tmp_path):
        path = str(tmp_path / "file.bin")
        write_section_file(fs, path, magic=RUN_MAGIC, meta={}, sections=[])
        with pytest.raises(CorruptRunError, match="missing section"):
            SectionFile(fs, path, magic=RUN_MAGIC).array("keys")

    def test_header_and_meta_corruption_detected_at_open(self, fs, tmp_path):
        for offset in (0, 15):  # magic byte, metadata byte
            path = str(tmp_path / f"file{offset}.bin")
            write_section_file(
                fs, path, magic=RUN_MAGIC, meta={"n": 5},
                sections=[("keys", np.arange(5, dtype=np.int64))],
            )
            flip_byte(path, offset)
            with pytest.raises(CorruptRunError):
                SectionFile(fs, path, magic=RUN_MAGIC)

    def test_section_corruption_detected_at_first_touch(self, fs, tmp_path):
        path = str(tmp_path / "file.bin")
        keys = np.arange(64, dtype=np.int64)
        write_section_file(
            fs, path, magic=RUN_MAGIC, meta={}, sections=[("keys", keys)],
        )
        reader = SectionFile(fs, path, magic=RUN_MAGIC)
        offset, nbytes = reader.section_span("keys")
        flip_byte(path, offset + nbytes // 2)
        # Open succeeded (O(metadata)); materialization must not.
        with pytest.raises(CorruptRunError, match="checksum"):
            SectionFile(fs, path, magic=RUN_MAGIC).array("keys")

    def test_truncated_file(self, fs, tmp_path):
        path = str(tmp_path / "file.bin")
        write_section_file(
            fs, path, magic=RUN_MAGIC, meta={},
            sections=[("keys", np.arange(64, dtype=np.int64))],
        )
        os.truncate(path, os.path.getsize(path) - 40)
        with pytest.raises(CorruptRunError):
            SectionFile(fs, path, magic=RUN_MAGIC).array("keys")


# -- write-ahead log -----------------------------------------------------------


class TestWAL:
    def _fill(self, fs, path):
        WriteAheadLog.create(fs, path)
        wal = WriteAheadLog(fs, path)
        wal.append_puts(
            np.array([3, 1, 2], dtype=np.int64),
            np.array([30, 10, 20], dtype=np.int64),
        )
        wal.append_deletes(np.array([1], dtype=np.int64))
        wal.append_puts(
            np.array([9], dtype=np.int64), np.array([90], dtype=np.int64)
        )
        wal.close()

    def test_append_replay_round_trip(self, fs, tmp_path):
        path = str(tmp_path / "wal.log")
        self._fill(fs, path)
        records, valid, size = wal_replay(fs, path)
        assert valid == size
        assert [r.kind for r in records] == [1, 2, 1]
        assert np.array_equal(records[0].keys, [3, 1, 2])
        assert np.array_equal(records[0].values, [30, 10, 20])
        assert np.array_equal(records[1].keys, [1])
        assert records[1].values is None

    def test_torn_tail_truncates_to_record_boundary(self, fs, tmp_path):
        path = str(tmp_path / "wal.log")
        self._fill(fs, path)
        _, full, _ = wal_replay(fs, path)
        os.truncate(path, full - 5)  # tear the last record
        records, valid, size = wal_replay(fs, path)
        assert len(records) == 2 and valid < size

    def test_mid_file_corruption_drops_suffix(self, fs, tmp_path):
        path = str(tmp_path / "wal.log")
        self._fill(fs, path)
        flip_byte(path, 12)  # inside the first record's payload
        records, valid, _ = wal_replay(fs, path)
        # Nothing after a corrupt record is trustworthy.
        assert records == [] and valid == 0

    def test_empty_log(self, fs, tmp_path):
        path = str(tmp_path / "wal.log")
        WriteAheadLog.create(fs, path)
        assert wal_replay(fs, path) == ([], 0, 0)

    def test_deferred_fsync_close_flushes(self, fs, tmp_path):
        path = str(tmp_path / "wal.log")
        WriteAheadLog.create(fs, path)
        wal = WriteAheadLog(fs, path, fsync=False)
        wal.append_puts(
            np.array([1], dtype=np.int64), np.array([2], dtype=np.int64)
        )
        wal.close()
        wal.close()  # idempotent
        records, _, _ = wal_replay(fs, path)
        assert len(records) == 1


# -- manifest ------------------------------------------------------------------


class TestManifest:
    STATE = {
        "next_file_id": 7,
        "next_sequence": 3,
        "wal": "wal-00000007.log",
        "runs": [{"file": "run-00000004.run", "sequence": 2, "level": 0,
                  "n": 10, "tombstones": 1}],
    }

    def test_commit_load_round_trip(self, fs, tmp_path):
        d = str(tmp_path)
        commit_manifest(fs, d, self.STATE)
        state = load_manifest(fs, d)
        for key, value in self.STATE.items():
            assert state[key] == value

    def test_commit_replaces_atomically(self, fs, tmp_path):
        d = str(tmp_path)
        commit_manifest(fs, d, self.STATE)
        newer = dict(self.STATE, next_file_id=8)
        commit_manifest(fs, d, newer)
        assert load_manifest(fs, d)["next_file_id"] == 8
        assert not os.path.exists(os.path.join(d, MANIFEST_NAME + ".tmp"))

    def test_crash_during_commit_keeps_old_state(self, tmp_path):
        d = str(tmp_path)
        commit_manifest(RealFileSystem(), d, self.STATE)
        # Crash at every site of the replacement commit: the committed
        # manifest must stay readable and hold exactly one of the two
        # states (old until the rename lands, new after).
        dry = FaultInjectingFilesystem()
        commit_manifest(dry, d, dict(self.STATE, next_file_id=8))
        commit_manifest(RealFileSystem(), d, self.STATE)  # reset to old
        for site in range(1, dry.ops + 1):
            faulty = FaultInjectingFilesystem(crash_at=site, mode="lose")
            try:
                commit_manifest(faulty, d, dict(self.STATE, next_file_id=8))
                crashed = False
            except SimulatedCrash:
                crashed = True
            assert crashed == (site <= dry.ops)
            assert load_manifest(RealFileSystem(), d)["next_file_id"] in (7, 8)
            commit_manifest(RealFileSystem(), d, self.STATE)

    def test_corrupt_manifest_raises_not_fallback(self, fs, tmp_path):
        d = str(tmp_path)
        commit_manifest(fs, d, self.STATE)
        flip_byte(os.path.join(d, MANIFEST_NAME), 20)
        with pytest.raises(CorruptRunError):
            load_manifest(fs, d)

    def test_missing_field_raises(self, fs, tmp_path):
        d = str(tmp_path)
        state = dict(self.STATE)
        del state["wal"]
        commit_manifest(fs, d, state)
        with pytest.raises(CorruptRunError, match="wal"):
            load_manifest(fs, d)


# -- bloom serialization (satellite) -------------------------------------------


class _CrcScoreModel:
    """Module-level (hence picklable) deterministic classifier."""

    def predict_proba_one(self, key: str) -> float:
        import zlib

        return (zlib.crc32(key.encode()) % 4096) / 4096.0

    def predict_proba(self, keys):
        return np.array([self.predict_proba_one(k) for k in keys])

    def size_bytes(self) -> int:
        return 64


class TestBloomSerialization:
    def test_standard_round_trip_is_bit_exact(self):
        bloom = BloomFilter.for_capacity(2_000, 0.01)
        keys = np.arange(0, 6_000, 3, dtype=np.int64)
        bloom.add_batch(keys)
        clone = BloomFilter.from_bytes(bloom.to_bytes())
        assert clone.num_bits == bloom.num_bits
        assert clone.num_hashes == bloom.num_hashes
        assert clone.count == bloom.count
        assert np.array_equal(clone._bits, bloom._bits)
        probes = np.arange(0, 9_000, dtype=np.int64)
        assert np.array_equal(
            clone.contains_batch(probes), bloom.contains_batch(probes)
        )
        # Wire form is itself stable (pin for cross-version files).
        assert clone.to_bytes() == bloom.to_bytes()

    def test_standard_rejects_malformed(self):
        bloom = BloomFilter(64, 2)
        blob = bloom.to_bytes()
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(blob[:8])
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(b"NOPE" + blob[4:])
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(blob + b"\x00")

    def test_learned_guard_round_trip(self):
        validation = [f"v:{i}" for i in range(256)]
        guard = LearnedBloomGuard(_CrcScoreModel, validation, 0.05)
        keys = np.arange(0, 1_500, 3, dtype=np.int64)
        guard.add_batch(keys)
        clone = LearnedBloomGuard.from_bytes(guard.to_bytes())
        probes = np.arange(0, 2_000, dtype=np.int64)
        assert np.array_equal(
            clone.contains_batch(probes), guard.contains_batch(probes)
        )
        assert clone.contains_batch(keys).all()

    def test_learned_guard_unpicklable_classifier_raises(self):
        guard = LearnedBloomGuard(
            _CrcScoreModel, [], 0.05, encode=lambda k: str(k)
        )
        with pytest.raises(TypeError, match="picklable"):
            guard.to_bytes()


# -- run persistence -----------------------------------------------------------


class TestRunPersistence:
    def test_save_load_answers_identically(self, fs, tmp_path):
        run = _example_run()
        path = str(tmp_path / "run.run")
        run.save(fs, path)
        loaded = SortedRun.load(fs, path)
        assert loaded.is_loaded_lazy()
        assert len(loaded) == len(run)
        assert loaded.sequence == run.sequence
        assert loaded.level == run.level
        assert loaded.num_tombstones == run.num_tombstones

        rng = np.random.default_rng(11)
        queries = np.concatenate([
            rng.choice(run.keys, size=500),
            rng.integers(0, 1 << 62, size=500, dtype=np.int64),
        ])
        for a, b in zip(run.probe_batch(queries), loaded.probe_batch(queries)):
            assert np.array_equal(a, b)
        assert np.array_equal(
            run.bloom_contains_batch(queries),
            loaded.bloom_contains_batch(queries),
        )
        lows = rng.integers(0, 1 << 62, size=64, dtype=np.int64)
        highs = lows + rng.integers(0, 1 << 40, size=64, dtype=np.int64)
        got_r, got_f = loaded.range_scan_batch(lows, highs)
        want_r, want_f = run.range_scan_batch(lows, highs)
        assert np.array_equal(got_r.values, want_r.values)
        assert np.array_equal(got_r.offsets, want_r.offsets)
        assert np.array_equal(got_f, want_f)

    def test_load_is_lazy_until_queried_and_close_releases(self, fs, tmp_path):
        run = _example_run()
        path = str(tmp_path / "run.run")
        run.save(fs, path)
        loaded = SortedRun.load(fs, path)
        assert loaded.is_loaded_lazy()
        assert loaded.size_bytes() == os.path.getsize(path)
        loaded.probe(int(run.keys[0]))
        assert not loaded.is_loaded_lazy()
        loaded.close()
        loaded.close()  # idempotent
        assert loaded.is_loaded_lazy()
        # Re-materializes after close.
        assert loaded.probe(int(run.keys[0]))[0]

    def test_manifest_cross_check_mismatch(self, fs, tmp_path):
        run = _example_run(n=500)
        path = str(tmp_path / "run.run")
        run.save(fs, path)
        SortedRun.load(fs, path, expect={"n": len(run)})  # matching: fine
        with pytest.raises(CorruptRunError, match="manifest expects"):
            SortedRun.load(fs, path, expect={"n": len(run) + 1})
        with pytest.raises(CorruptRunError, match="sequence"):
            SortedRun.load(fs, path, expect={"sequence": 99})

    @pytest.mark.parametrize(
        "section",
        ["keys", "values", "tombstones", "slopes", "intercepts",
         "lo_offsets", "hi_offsets", "bloom"],
    )
    def test_any_flipped_section_byte_raises_never_lies(
        self, fs, tmp_path, section
    ):
        run = _example_run(n=2_000)
        path = str(tmp_path / "run.run")
        run.save(fs, path)
        offset, nbytes = SectionFile(
            fs, path, magic=RUN_MAGIC
        ).section_span(section)
        assert nbytes > 0, f"test run must populate section {section}"
        flip_byte(path, offset + nbytes // 2)
        loaded = SortedRun.load(fs, path)  # O(metadata) open still fine
        queries = run.keys[:64]
        with pytest.raises(CorruptRunError):
            # Touch every read surface; whichever materializes the
            # damaged section must raise before answering.
            loaded.bloom_contains_batch(queries)
            loaded.probe_batch(queries)
            loaded.range_scan_batch(queries[:8], queries[:8] + 1000)

    def test_learned_guard_persists_through_run(self, fs, tmp_path):
        validation = [f"v:{i}" for i in range(128)]
        keys = np.arange(0, 3_000, 3, dtype=np.int64)
        run = SortedRun(
            keys,
            bloom_factory=learned_bloom_factory(_CrcScoreModel, validation),
        )
        path = str(tmp_path / "run.run")
        run.save(fs, path)
        loaded = SortedRun.load(fs, path)
        assert isinstance(loaded.bloom, LearnedBloomGuard)
        assert loaded.bloom_contains_batch(keys).all()


# -- durable store lifecycle ---------------------------------------------------


class TestDurableStore:
    def _payload(self, seed=0, n=6_000):
        rng = np.random.default_rng(seed)
        keys = rng.choice(40_000, size=n, replace=False).astype(np.int64)
        vals = rng.integers(1, 1 << 60, size=n, dtype=np.int64)
        return keys, vals

    def test_reopen_after_clean_close(self, tmp_path):
        d = str(tmp_path / "db")
        keys, vals = self._payload()
        with LearnedLSMStore(path=d, memtable_capacity=1_024) as store:
            store.insert_batch(keys, vals)
            store.delete_batch(keys[:1_000])
            live = store.live_keys()
        with LearnedLSMStore(path=d) as store:
            assert all(r.is_loaded_lazy() for r in store.runs)
            got, found = store.lookup_batch(keys)
            assert not found[:1_000].any()
            assert found[1_000:].all()
            assert np.array_equal(got[1_000:], vals[1_000:])
            assert np.array_equal(store.live_keys(), live)

    def test_reopen_replays_wal_after_abandon(self, tmp_path):
        d = str(tmp_path / "db")
        keys, vals = self._payload(n=700)
        store = LearnedLSMStore(path=d, memtable_capacity=500)
        store.insert_batch(keys[:500], vals[:500])   # seals
        store.insert_batch(keys[500:], vals[500:])   # stays buffered
        store.delete(int(keys[0]))
        # Simulated kill -9: no close(), the WAL is the only record of
        # the buffered tail.
        reopened = LearnedLSMStore(path=d)
        assert reopened.recovered_wal_records == 2
        got, found = reopened.lookup_batch(keys)
        assert not found[0]
        assert found[1:].all()
        assert np.array_equal(got[1:], vals[1:])
        store.close()
        reopened.close()

    def test_wal_corruption_recovers_to_consistent_prefix(self, tmp_path):
        d = str(tmp_path / "db")
        store = LearnedLSMStore(path=d, memtable_capacity=10_000)
        store.insert_batch(np.arange(100, dtype=np.int64))
        store.insert_batch(np.arange(100, 200, dtype=np.int64))
        store.close()
        state = load_manifest(RealFileSystem(), d)
        wal_path = os.path.join(d, state["wal"])
        flip_byte(wal_path, os.path.getsize(wal_path) - 300)  # 2nd record
        reopened = LearnedLSMStore(path=d)
        # Batch 1 intact, batch 2 dropped whole — record granularity,
        # never a half-applied batch.
        assert reopened.contains_batch(np.arange(100)).all()
        assert not reopened.contains_batch(np.arange(100, 200)).any()
        reopened.insert(150)  # and the log accepts appends again
        assert reopened.contains(150)
        reopened.close()

    def test_corrupt_manifest_raises(self, tmp_path):
        d = str(tmp_path / "db")
        with LearnedLSMStore(path=d) as store:
            store.insert_batch(np.arange(100, dtype=np.int64))
        flip_byte(os.path.join(d, MANIFEST_NAME), 25)
        with pytest.raises(CorruptRunError):
            LearnedLSMStore(path=d)

    def test_corrupt_run_section_raises_on_query(self, tmp_path):
        d = str(tmp_path / "db")
        with LearnedLSMStore(path=d, memtable_capacity=256) as store:
            store.insert_batch(np.arange(2_000, dtype=np.int64))
        state = load_manifest(RealFileSystem(), d)
        run_path = os.path.join(d, state["runs"][0]["file"])
        offset, nbytes = SectionFile(
            RealFileSystem(), run_path, magic=RUN_MAGIC
        ).section_span("values")
        flip_byte(run_path, offset + nbytes // 2)
        with LearnedLSMStore(path=d) as reopened:
            with pytest.raises(CorruptRunError):
                reopened.lookup_batch(np.arange(2_000, dtype=np.int64))

    def test_close_idempotent_and_guards(self, tmp_path):
        store = LearnedLSMStore(path=str(tmp_path / "db"))
        store.insert(1, 10)
        store.close()
        store.close()
        assert store.closed
        with pytest.raises(ValueError, match="closed"):
            store.insert(2)
        with pytest.raises(ValueError, match="closed"):
            store.lookup(1)
        with pytest.raises(ValueError, match="closed"):
            store.flush()
        # Memory-only stores share the lifecycle contract.
        mem = LearnedLSMStore()
        with mem:
            mem.insert(1)
        with pytest.raises(ValueError, match="closed"):
            mem.insert(2)

    def test_wal_fsync_off_still_recovers_after_close(self, tmp_path):
        d = str(tmp_path / "db")
        with LearnedLSMStore(path=d, wal_fsync=False) as store:
            store.insert_batch(np.arange(50, dtype=np.int64))
        with LearnedLSMStore(path=d) as store:
            assert store.contains_batch(np.arange(50)).all()

    def test_bulk_load_persists_and_conflicts_detected(self, tmp_path):
        d = str(tmp_path / "db")
        keys = np.arange(0, 5_000, 2, dtype=np.int64)
        with LearnedLSMStore(keys, keys * 2, path=d) as store:
            assert store.num_runs == 1
        with LearnedLSMStore(path=d) as store:
            assert store.lookup(4_000) == 8_000
        with pytest.raises(ValueError, match="existing store"):
            LearnedLSMStore(keys, path=d)
        with pytest.raises(ValueError, match="filesystem requires path"):
            LearnedLSMStore(filesystem=RealFileSystem())

    def test_orphan_files_are_garbage_collected(self, tmp_path):
        d = str(tmp_path / "db")
        with LearnedLSMStore(path=d) as store:
            store.insert_batch(np.arange(100, dtype=np.int64))
        for name in ("run-99999999.run", "wal-99999999.log", "junk.tmp"):
            with open(os.path.join(d, name), "wb") as f:
                f.write(b"orphan")
        with open(os.path.join(d, "notes.txt"), "wb") as f:
            f.write(b"foreign file")
        with LearnedLSMStore(path=d) as store:
            assert store.contains(50)
        names = set(os.listdir(d))
        assert "notes.txt" in names  # foreign files are left alone
        assert not names & {"run-99999999.run", "wal-99999999.log", "junk.tmp"}

    def test_batch_key_dtype_contract(self, tmp_path):
        store = LearnedLSMStore()
        with pytest.raises(TypeError, match="integer"):
            store.insert_batch(np.array([1.5, 2.5]))
        with pytest.raises(TypeError, match="integer"):
            store.delete_batch(np.array([1.0]))
        with pytest.raises(TypeError, match="integer"):
            LearnedLSMStore(np.array([1.0, 2.0]))
        # Integer-like inputs pass: lists infer int dtype, empty batches
        # are vacuously fine despite numpy's float64 default for [].
        store.insert_batch([1, 2, 3])
        store.insert_batch([])
        store.delete_batch([])
        store.insert_batch(np.arange(5, dtype=np.uint64))
        assert store.contains(2)

    def test_durable_compaction_budget_bounds_seal_work(self, tmp_path):
        d = str(tmp_path / "db")
        with LearnedLSMStore(path=d, memtable_capacity=64) as store:
            before = 0
            for start in range(0, 4_096, 64):
                store.insert_batch(np.arange(start, start + 64,
                                             dtype=np.int64))
                # At most one merge window per seal (the PR 4 fix).
                assert store.write_stats.compactions - before <= 1
                before = store.write_stats.compactions
            store.compact()
            assert store.num_runs == 1
            assert store.contains_batch(np.arange(4_096)).all()


# -- group commit + exception-path sync (ISSUE 7) ------------------------------


class TestGroupCommit:
    """The ``wal_fsync=False`` loss window, bounded.

    ``FaultInjectingFilesystem`` doubles as a durability *tracker*
    here: its ``_synced`` map records each file's last-fsynced length,
    so a test can assert exactly which bytes would survive a machine
    crash without killing anything.
    """

    def _wal(self, fs, path, **kwargs):
        WriteAheadLog.create(fs, path)
        return WriteAheadLog(fs, path, fsync=False, **kwargs)

    def test_byte_threshold_triggers_fsync(self, tmp_path):
        fs = FaultInjectingFilesystem()
        path = str(tmp_path / "wal.log")
        wal = self._wal(fs, path, group_commit_bytes=150)
        keys = np.arange(4, dtype=np.int64)
        wal.append_puts(keys, keys)  # 77-byte frame: below the budget
        assert fs._synced[path] == 0
        assert wal.synced_records == 0
        wal.append_puts(keys, keys)  # 154 >= 150: the group commits
        assert fs._synced[path] == os.path.getsize(path)
        assert wal.synced_records == 2
        wal.append_puts(keys, keys)  # a fresh window opens
        assert fs._synced[path] < os.path.getsize(path)
        wal.close()
        assert fs._synced[path] == os.path.getsize(path)

    def test_interval_triggers_fsync(self, tmp_path):
        now = [0.0]
        fs = FaultInjectingFilesystem()
        path = str(tmp_path / "wal.log")
        wal = self._wal(
            fs, path, group_commit_interval=5.0, clock=lambda: now[0]
        )
        keys = np.arange(4, dtype=np.int64)
        wal.append_puts(keys, keys)
        assert wal.synced_records == 0  # 0s elapsed
        now[0] = 4.9
        wal.append_puts(keys, keys)
        assert wal.synced_records == 0
        now[0] = 5.0
        wal.append_puts(keys, keys)  # interval elapsed: sync
        assert wal.synced_records == 3
        assert fs._synced[path] == os.path.getsize(path)
        wal.close()

    def test_knob_validation(self, tmp_path):
        fs = RealFileSystem()
        path = str(tmp_path / "wal.log")
        WriteAheadLog.create(fs, path)
        with pytest.raises(ValueError, match="group_commit_bytes"):
            WriteAheadLog(fs, path, group_commit_bytes=0)
        with pytest.raises(ValueError, match="group_commit_interval"):
            WriteAheadLog(fs, path, group_commit_interval=0.0)

    def test_exception_exit_syncs_wal(self, tmp_path):
        """An exception inside the ``with`` block must not drop
        acknowledged-but-unsynced writes: ``__exit__`` → ``close``
        flushes + fsyncs the WAL tail even on the error path."""
        fs = FaultInjectingFilesystem()
        d = str(tmp_path / "db")
        with pytest.raises(RuntimeError, match="application bug"):
            with LearnedLSMStore(
                path=d, filesystem=fs, wal_fsync=False
            ) as store:
                store.insert_batch(np.arange(64, dtype=np.int64))
                wal_path = store._wal.path
                assert fs._synced[wal_path] < os.path.getsize(wal_path)
                raise RuntimeError("application bug")
        # Every appended byte reached the simulated platter.
        assert fs._synced[wal_path] == os.path.getsize(wal_path)
        with LearnedLSMStore(path=d) as store:
            assert store.contains_batch(np.arange(64)).all()

    def test_group_commit_bounds_loss_window(self, tmp_path):
        """Machine-crash sweep under ``wal_fsync=False`` +
        ``group_commit_bytes``: the recovered state is always a batch
        prefix, and the acked batches it lost always fit inside the
        byte budget — the bounded-loss contract the knob buys."""
        budget = 200
        frame = 8 + 5 + 2 * 8 * 4  # one 4-key put record, framed
        max_lost = budget // frame + 1  # < budget pending + in-flight
        batches = 40

        def drive(fs, directory, acked):
            store = LearnedLSMStore(
                path=directory,
                filesystem=fs,
                wal_fsync=False,
                memtable_capacity=10_000,
                wal_group_commit_bytes=budget,
            )
            try:
                for i in range(batches):
                    keys = np.arange(4 * i, 4 * i + 4, dtype=np.int64)
                    store.insert_batch(keys, keys * 10)
                    acked[0] += 1
            finally:
                try:
                    store.close()
                except SimulatedCrash:
                    pass  # descriptors still released (kernel model)

        probe = FaultInjectingFilesystem()
        drive(probe, str(tmp_path / "dry"), [0])
        for crash_at in range(1, probe.ops + 1):
            d = str(tmp_path / f"crash-{crash_at}")
            fs = FaultInjectingFilesystem(crash_at=crash_at, mode="lose")
            cell = [0]
            try:
                drive(fs, d, cell)
            except SimulatedCrash:
                pass
            acked = cell[0]
            with LearnedLSMStore(path=d) as store:
                got = store.live_keys()
                # Prefix: survivors are exactly batches 0..k-1.
                assert got.size % 4 == 0
                k = got.size // 4
                assert np.array_equal(
                    got, np.arange(4 * k, dtype=np.int64)
                )
                values, found = store.lookup_batch(got)
                assert found.all()
                assert np.array_equal(values, got * 10)
            assert acked - k <= max_lost, (
                f"site {crash_at}: acked {acked}, survived {k} — "
                f"lost {acked - k} > bound {max_lost}"
            )
