"""Unit tests for the hierarchical lookup table."""

import numpy as np
import pytest

from repro.btree import HierarchicalLookupTable


def truth(keys, q):
    return int(np.searchsorted(keys, q, side="left"))


class TestHierarchicalLookupTable:
    @pytest.mark.parametrize("group", [4, 16, 64])
    def test_matches_searchsorted(self, group, uniform_small, rng):
        table = HierarchicalLookupTable(uniform_small, group=group)
        queries = np.concatenate(
            [
                rng.choice(uniform_small, 200),
                rng.integers(
                    uniform_small.min() - 5, uniform_small.max() + 5, 200
                ),
            ]
        )
        for q in queries:
            assert table.lookup(float(q)) == truth(uniform_small, q)

    def test_matches_on_lognormal(self, lognormal_small, rng):
        table = HierarchicalLookupTable(lognormal_small)
        for q in rng.choice(lognormal_small, 300):
            assert table.lookup(float(q)) == truth(lognormal_small, q)

    def test_two_auxiliary_arrays(self, uniform_small):
        table = HierarchicalLookupTable(uniform_small, group=64)
        # paper: "creating two arrays in total"
        assert table._second.size == pytest.approx(
            np.ceil(uniform_small.size / 64 / 64) * 64, abs=64
        )
        assert table._top.size <= table._second.size

    def test_second_table_padded_to_group_multiple(self, uniform_small):
        table = HierarchicalLookupTable(uniform_small, group=64)
        assert table._second.size % 64 == 0

    def test_size_far_below_data(self, uniform_small):
        table = HierarchicalLookupTable(uniform_small, group=64)
        assert table.size_bytes() < uniform_small.size * 8 / 16

    def test_rejects_bad_group(self):
        with pytest.raises(ValueError):
            HierarchicalLookupTable(np.array([1, 2]), group=1)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            HierarchicalLookupTable(np.array([2, 1]))

    def test_empty(self):
        table = HierarchicalLookupTable(np.array([], dtype=np.int64))
        assert table.lookup(1.0) == 0

    def test_extremes(self, uniform_small):
        table = HierarchicalLookupTable(uniform_small)
        assert table.lookup(float(uniform_small.min() - 1)) == 0
        assert table.lookup(float(uniform_small.max() + 1)) == uniform_small.size
