"""Unit tests for the FAST-style SIMD tree."""

import numpy as np
import pytest

from repro.btree import BTreeIndex, FASTTree, SIMD_WIDTH


def truth(keys, q):
    return int(np.searchsorted(keys, q, side="left"))


class TestFASTTree:
    @pytest.mark.parametrize("page_size", [1, 4, 128])
    def test_matches_searchsorted(self, page_size, uniform_small, rng):
        tree = FASTTree(uniform_small, page_size=page_size)
        queries = np.concatenate(
            [
                rng.choice(uniform_small, 200),
                rng.integers(
                    uniform_small.min() - 5, uniform_small.max() + 5, 200
                ),
            ]
        )
        for q in queries:
            assert tree.lookup(float(q)) == truth(uniform_small, q)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            FASTTree(np.array([2, 1]))

    def test_empty_and_single(self):
        assert FASTTree(np.array([], dtype=np.int64)).lookup(1.0) == 0
        single = FASTTree(np.array([9], dtype=np.int64))
        assert single.lookup(8.0) == 0
        assert single.lookup(10.0) == 1

    def test_power_of_two_allocation_blowup(self, uniform_small):
        """The paper: FAST 'can lead to significantly larger indexes'."""
        fast = FASTTree(uniform_small, page_size=1)
        btree = BTreeIndex(uniform_small, page_size=128)
        assert fast.size_bytes() > 10 * btree.size_bytes()

    def test_every_level_visit_counts_simd_width(self, uniform_small):
        tree = FASTTree(uniform_small, page_size=64)
        tree.stats.reset()
        tree.find_page(float(uniform_small[0]))
        assert tree.stats.comparisons == tree.stats.nodes_visited * SIMD_WIDTH

    def test_extremes(self, uniform_small):
        tree = FASTTree(uniform_small, page_size=32)
        assert tree.lookup(float(uniform_small.min()) - 1) == 0
        assert tree.lookup(float(uniform_small.max()) + 1) == uniform_small.size

    def test_contains(self, uniform_small):
        tree = FASTTree(uniform_small, page_size=16)
        assert tree.contains(float(uniform_small[3]))
        assert not tree.contains(float(uniform_small.max()) + 7)
