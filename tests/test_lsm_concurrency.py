"""Concurrency tests for the LSM store (ISSUE 7).

Three layers of assurance for the repo's first threads:

* **Stress** — the races the thread-safety audit fixed, amplified with
  a tiny interpreter switch interval so the *unfixed* code fails here
  (``Memtable._materialize`` iterating a dict a writer mutates raises
  ``RuntimeError``/``ValueError``; unsynchronized ``+=`` on the stats
  counters loses increments).  Run under ``PYTHONDEVMODE=1`` in the CI
  stress lane.
* **Differential oracle** — reader threads issuing ``lookup_batch`` /
  ``range_items_batch`` *while* the writer seals and the background
  worker merges, checked against a dict oracle.  Racing reads cannot
  be compared to a single oracle state, so the invariants are
  linearizability bounds: every write acknowledged before a read
  began must be visible, every value returned must be one the key
  actually held, and a quiesced final sweep must match the oracle
  exactly.
* **Crash fuzz mid-merge** — deterministic kills injected while the
  background worker owns the fault filesystem's site counter
  alongside the writer; acknowledged writes must survive recovery and
  tombstones must not resurrect, whichever thread died.
"""

import os
import sys
import threading

import numpy as np
import pytest

from repro.lsm import (
    FaultInjectingFilesystem,
    LearnedLSMStore,
    Memtable,
    SimulatedCrash,
    SizeTieredCompaction,
)

#: Sweep stride for the mid-merge crash fuzz (same knob as
#: test_crash_recovery; the CI stress lane widens it).
STRIDE = max(1, int(os.environ.get("REPRO_CRASH_FUZZ_STRIDE", "1")))


@pytest.fixture
def fast_switching():
    """Amplify thread interleavings: switch the interpreter every
    ~1µs instead of every 5ms, making torn read-modify-write windows
    thousands of times more likely."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    yield
    sys.setswitchinterval(previous)


def _run_threads(workers):
    """Start, join, and re-raise the first failure from any worker."""
    errors = []

    def wrap(fn):
        def run():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        return run

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


# -- stress: the audited races -------------------------------------------------


class TestStress:
    def test_materialize_survives_concurrent_mutation(self, fast_switching):
        """Readers materializing sorted views while a writer mutates
        the dicts.  Unfixed, ``np.fromiter`` / set iteration race the
        ``dict.update`` / ``pop`` and raise (``dictionary changed size
        during iteration``, ``iterator too short``)."""
        mem = Memtable()
        stop = threading.Event()
        rng = np.random.default_rng(7)

        def writer():
            try:
                for i in range(400):
                    keys = rng.integers(0, 5_000, 64).astype(np.int64)
                    mem.put_batch(keys, keys * 2)
                    mem.delete_batch(keys[::3])
                    if i % 50 == 0:
                        mem.clear()
            finally:
                stop.set()

        def reader():
            while not stop.is_set():
                put_keys, put_values, tombs = mem.views()
                assert put_keys.size == put_values.size
                if put_keys.size > 1:
                    assert (np.diff(put_keys) > 0).all()
                mem.snapshot()

        _run_threads([writer, reader, reader, reader])

    def test_read_stats_exact_under_concurrent_lookups(
        self, fast_switching
    ):
        """N threads, L lookups each: the counter must land on exactly
        N*L.  Unfixed ``+=`` increments tear under the 1µs switch
        interval and undercount."""
        store = LearnedLSMStore(memtable_capacity=64)
        keys = np.arange(256, dtype=np.int64)
        store.insert_batch(keys, keys)
        per_thread, threads = 4_000, 6

        def prober():
            for i in range(per_thread):
                store.lookup(int(keys[i % keys.size]))

        _run_threads([prober] * threads)
        assert store.read_stats.lookups == per_thread * threads

    def test_write_stats_add_is_atomic(self, fast_switching):
        stats = LearnedLSMStore(memtable_capacity=2**30).write_stats

        def bump():
            for _ in range(10_000):
                stats.add(keys_written=1, entries_sealed=2)

        _run_threads([bump] * 6)
        assert stats.keys_written == 60_000
        assert stats.entries_sealed == 120_000


# -- differential oracle under background compaction ---------------------------


def _check_monotone_reads(store, universe, values_of, published, stop):
    """Reader body: every key acknowledged before the read began must
    be found with its (immutable) value; every hit must carry the
    right value; range items must agree with point lookups."""
    rng = np.random.default_rng(threading.get_ident() % 2**32)
    while not stop.is_set():
        floor = published[0]  # acked count before the read begins
        values, found = store.lookup_batch(universe)
        assert found[:floor].all(), "acked key invisible to lookup_batch"
        hits = np.nonzero(found)[0]
        assert np.array_equal(values[hits], values_of[hits])
        # Spot-check a range slice through the same snapshot contract.
        i = int(rng.integers(0, max(universe.size - 64, 1)))
        lo, hi = int(universe[i]), int(universe[i]) + 10_000
        result, vals = store.range_items_batch([lo], [hi])
        got = np.asarray(result[0], dtype=np.int64)
        assert (np.diff(got) > 0).all() if got.size > 1 else True
        pos = np.searchsorted(universe, got)
        assert np.array_equal(universe[pos], got), "range invented a key"
        assert np.array_equal(vals, values_of[pos])


@pytest.mark.parametrize("durable", [False, True])
def test_concurrent_readers_differential_oracle(tmp_path, durable):
    rng = np.random.default_rng(11)
    universe = np.sort(
        rng.choice(50_000_000, size=24_000, replace=False)
    ).astype(np.int64)
    order = rng.permutation(universe.size)
    values_of = universe * 7 + 1  # immutable value per key
    kwargs = dict(
        memtable_capacity=1_024,
        compaction=SizeTieredCompaction(min_runs=2),
        background=True,
    )
    if durable:
        kwargs["path"] = str(tmp_path / "db")
    store = LearnedLSMStore(**kwargs)
    try:
        published = [0]  # keys acked, in `order` position... see below
        stop = threading.Event()

        # Phase 1: monotone inserts (keys in sorted-prefix ack order so
        # readers can assert "first `published` universe keys visible").
        def writer():
            try:
                acked = np.zeros(universe.size, dtype=bool)
                frontier = 0
                for i in range(0, order.size, 500):
                    idx = order[i:i + 500]
                    store.insert_batch(universe[idx], values_of[idx])
                    acked[idx] = True
                    while frontier < acked.size and acked[frontier]:
                        frontier += 1
                    published[0] = frontier
            finally:
                stop.set()

        readers = [
            (
                lambda: _check_monotone_reads(
                    store, universe, values_of, published, stop
                )
            )
            for _ in range(3)
        ]
        _run_threads([writer] + readers)
        store.wait_for_compaction()

        # Quiesced: exact oracle equality.
        values, found = store.lookup_batch(universe)
        assert found.all()
        assert np.array_equal(values, values_of)

        # Phase 2: deletes racing reads — a key acked-deleted before a
        # read begins must stay invisible (no tombstone resurrection
        # through any snapshot), keys not yet deleted must remain.
        doomed = universe[: universe.size // 2]
        deleted = [0]
        stop2 = threading.Event()

        def deleter():
            try:
                for i in range(0, doomed.size, 400):
                    store.delete_batch(doomed[i:i + 400])
                    deleted[0] = i + min(400, doomed.size - i)
            finally:
                stop2.set()

        def tomb_reader():
            while not stop2.is_set():
                floor = deleted[0]
                values, found = store.lookup_batch(universe)
                assert not found[:floor].any(), "deleted key resurrected"
                assert found[doomed.size:].all(), "live key vanished"
                hits = np.nonzero(found)[0]
                assert np.array_equal(values[hits], values_of[hits])

        _run_threads([deleter, tomb_reader, tomb_reader])
        store.wait_for_compaction()
        survivors = store.live_keys()
        assert np.array_equal(survivors, universe[doomed.size:])
    finally:
        store.close()


def test_deferred_deletion_waits_for_pins(tmp_path):
    """White-box pin contract: a full compaction must not unlink run
    files while a read snapshot pins them; the sweep after the last
    unpin must."""
    store = LearnedLSMStore(
        path=str(tmp_path / "db"),
        memtable_capacity=128,
        compaction=SizeTieredCompaction(min_runs=2),
    )
    with store:
        keys = np.arange(1_000, dtype=np.int64)
        for i in range(0, keys.size, 100):
            store.insert_batch(keys[i:i + 100], keys[i:i + 100] + 5)
        assert store.num_runs >= 2
        pinned = store._pin_runs()
        paths = [r.path for r in pinned]
        store.compact()
        assert store.num_runs == 1
        # Superseded but pinned: every input file must still exist...
        assert all(os.path.exists(p) for p in paths)
        # ...and still answer probes through the pinned snapshot.
        hit, dead, value = pinned[0].probe(int(pinned[0].keys[0]))
        assert hit and not dead
        store._unpin_runs(pinned)
        store.wait_for_compaction()  # sweeps the now-unpinned retirees
        live = {os.path.basename(r.path) for r in store.runs}
        remaining = {
            n for n in os.listdir(str(tmp_path / "db"))
            if n.startswith("run-")
        }
        assert remaining == live


# -- crash fuzz: kills landing mid-background-merge ----------------------------


def _bg_workload_ops(seed=23):
    rng = np.random.default_rng(seed)
    ops = []
    inserted = np.empty(0, dtype=np.int64)
    for i in range(30):
        if i % 5 == 4 and inserted.size:
            kill = rng.choice(inserted, size=min(8, inserted.size),
                              replace=False).astype(np.int64)
            ops.append(("del", kill, None))
        else:
            keys = rng.integers(0, 10**7, 24).astype(np.int64)
            ops.append(("put", keys, keys * 3 + 1))
            inserted = np.concatenate([inserted, keys])
    return ops


def _oracle(ops, n):
    state = {}
    for kind, keys, vals in ops[:n]:
        if kind == "put":
            state.update(zip(keys.tolist(), vals.tolist()))
        else:
            for key in keys.tolist():
                state.pop(key, None)
    return state


def _store_state(directory):
    with LearnedLSMStore(path=directory, background=False) as store:
        keys = store.live_keys()
        values, found = store.lookup_batch(keys)
        assert found.all()
        return dict(zip(keys.tolist(), values.tolist()))


@pytest.mark.parametrize("mode", ["lose", "keep"])
def test_crash_mid_background_merge(tmp_path, mode):
    """Deterministic-schedule kills while the background worker shares
    the injection-site counter with the writer.  Which thread dies at
    a given site varies with scheduling — the *guarantee* must not:
    every acknowledged batch survives recovery (WAL fsync is the ack
    barrier), the in-flight batch is all-or-nothing, and deleted keys
    stay deleted."""
    ops = _bg_workload_ops()

    def drive(fs, directory, acked):
        store = LearnedLSMStore(
            path=directory,
            filesystem=fs,
            memtable_capacity=64,
            compaction=SizeTieredCompaction(min_runs=2),
            background=True,
        )
        try:
            for kind, keys, vals in ops:
                if kind == "put":
                    store.insert_batch(keys, vals)
                else:
                    store.delete_batch(keys)
                acked[0] += 1
            store.wait_for_compaction()
        finally:
            # The worker may crash *after* the workload acked — stop it
            # before leaving so a late SimulatedCrash cannot escape
            # into another test.  close() must not raise here even on
            # a crashed filesystem.
            try:
                store.close()
            except SimulatedCrash:
                pass

    # Background scheduling makes the total op count nondeterministic;
    # size the sweep from an undisturbed dry run and accept that high
    # sites may not be reached on some interleavings.
    probe = FaultInjectingFilesystem()
    drive(probe, str(tmp_path / "dry"), [0])
    assert _store_state(str(tmp_path / "dry")) == _oracle(ops, len(ops))

    skipped = 0
    for crash_at in range(1, probe.ops + 1, STRIDE):
        d = str(tmp_path / f"{mode}-{crash_at}")
        fs = FaultInjectingFilesystem(crash_at=crash_at, mode=mode)
        cell = [0]
        try:
            drive(fs, d, cell)
        except SimulatedCrash:
            pass
        if not fs.crashed:
            skipped += 1
            continue
        acked = cell[0]
        state = _store_state(d)
        candidates = [_oracle(ops, acked), _oracle(ops, acked + 1)]
        assert state in candidates, (
            f"{mode} crash at site {crash_at}: recovered state is not a "
            f"consistent cut (acked={acked})"
        )
    # The schedule must actually exercise mid-merge kills: the vast
    # majority of dry-run sites recur under fault runs too.
    assert skipped <= probe.ops // 2
