"""Unit tests for the character-level GRU classifier."""

import numpy as np
import pytest

from repro.models import CharVocabulary, GRUClassifier


class TestCharVocabulary:
    def test_roundtrip_ascii(self):
        vocab = CharVocabulary()
        ids = vocab.encode("abc", 5)
        assert ids.shape == (5,)
        assert ids[3] == CharVocabulary.PAD
        assert ids[0] != ids[1] != ids[2]

    def test_oov(self):
        vocab = CharVocabulary()
        ids = vocab.encode("é", 2)  # non-ASCII
        assert ids[0] == CharVocabulary.OOV

    def test_truncation(self):
        vocab = CharVocabulary()
        ids = vocab.encode("abcdef", 3)
        assert ids.shape == (3,)

    def test_batch_matches_single(self):
        vocab = CharVocabulary()
        batch = vocab.encode_batch(["ab", "xyz"], 4)
        np.testing.assert_array_equal(batch[0], vocab.encode("ab", 4))
        np.testing.assert_array_equal(batch[1], vocab.encode("xyz", 4))


class TestGRUGradients:
    def test_bptt_matches_finite_differences(self):
        gru = GRUClassifier(width=3, embedding_dim=4, max_length=6, seed=0)
        texts = ["abc", "xy", "hello", "q"]
        labels = np.array([1.0, 0.0, 1.0, 0.0])
        ids = gru.vocab.encode_batch(texts, 6)
        _prob, cache = gru._forward(ids)
        analytic = gru._backward(cache, labels)
        numeric = gru.finite_difference_gradients(texts, labels)
        names = ["embedding", "w_x", "w_h", "b", "w_out", "b_out"]
        for name, a, n in zip(names, analytic, numeric):
            scale = max(float(np.abs(n).max()), 1e-8)
            assert np.abs(a - n).max() / scale < 1e-4, name

    def test_padding_is_masked(self):
        """Trailing pad characters must not change the prediction."""
        gru = GRUClassifier(width=4, embedding_dim=4, max_length=8, seed=0)
        a = gru.predict_proba_one("abc")
        ids_padded = gru.vocab.encode("abc", 8)
        assert (ids_padded[3:] == CharVocabulary.PAD).all()
        b = gru.predict_proba_one("abc")
        assert a == pytest.approx(b)


class TestGRUTraining:
    def test_loss_decreases_and_separates(self):
        rng = np.random.default_rng(0)
        positives = ["login" + str(rng.integers(1000)) for _ in range(150)]
        negatives = ["docs" + str(rng.integers(1000)) for _ in range(150)]
        texts = positives + negatives
        labels = np.array([1.0] * 150 + [0.0] * 150)
        gru = GRUClassifier(width=8, embedding_dim=8, max_length=12, seed=0)
        history = gru.fit(
            texts, labels, epochs=6, batch_size=64, learning_rate=5e-3
        )
        assert history[-1] < history[0]
        pos_scores = gru.predict_proba(positives[:50])
        neg_scores = gru.predict_proba(negatives[:50])
        assert pos_scores.mean() > neg_scores.mean() + 0.3

    def test_rejects_mismatched_lengths(self):
        gru = GRUClassifier(width=2, embedding_dim=2, max_length=4)
        with pytest.raises(ValueError):
            gru.fit(["a"], np.array([1.0, 0.0]), epochs=1)

    def test_probabilities_in_unit_interval(self):
        gru = GRUClassifier(width=4, embedding_dim=4, max_length=8, seed=0)
        scores = gru.predict_proba(["anything", "at", "all"])
        assert np.all((scores >= 0.0) & (scores <= 1.0))


class TestGRUAccounting:
    def test_param_count_formula(self):
        gru = GRUClassifier(width=16, embedding_dim=32, max_length=10, seed=0)
        v = gru.vocab.size
        expected = (
            v * 32          # embedding
            + 32 * 48       # w_x
            + 16 * 48       # w_h
            + 48            # b
            + 16            # w_out
            + 1             # b_out
        )
        assert gru.param_count == expected

    def test_size_scales_with_width(self):
        small = GRUClassifier(width=16, embedding_dim=32).size_bytes()
        large = GRUClassifier(width=128, embedding_dim=32).size_bytes()
        assert large > 3 * small

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            GRUClassifier(width=0)
