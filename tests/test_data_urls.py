"""Unit tests for the URL dataset generators."""

import numpy as np
import pytest

from repro.data.urls import (
    benign_urls,
    confusable_urls,
    phishing_urls,
    url_dataset,
)


class TestPhishingUrls:
    def test_unique_count(self):
        urls = phishing_urls(1_000, seed=1)
        assert len(urls) == 1_000
        assert len(set(urls)) == 1_000

    def test_deterministic(self):
        assert phishing_urls(300, seed=2) == phishing_urls(300, seed=2)

    def test_look_like_urls(self):
        for url in phishing_urls(200, seed=1):
            assert url.startswith("http")
            assert "/" in url.split("://", 1)[1]

    def test_hard_fraction_zero_is_fully_suspicious(self):
        urls = phishing_urls(400, seed=1, hard_fraction=0.0)
        suspicious_markers = (
            ".xyz", ".top", ".tk", ".ml", ".info", ".cc", ".club", "http://",
        )
        hits = sum(
            any(marker in u for marker in suspicious_markers) for u in urls
        )
        assert hits == len(urls)

    def test_hard_fraction_adds_benign_looking_keys(self):
        urls = phishing_urls(1_000, seed=1, hard_fraction=0.3)
        benign_looking = sum(u.startswith("https://www.") for u in urls)
        assert 0.2 < benign_looking / len(urls) < 0.45


class TestBenignUrls:
    def test_unique_count(self):
        urls = benign_urls(1_000, seed=1)
        assert len(set(urls)) == 1_000

    def test_https_and_common_tlds(self):
        for url in benign_urls(200, seed=1):
            assert url.startswith("https://www.")


class TestConfusableUrls:
    def test_exact_count(self):
        urls = confusable_urls(500, seed=1)
        assert len(urls) == 500
        assert len(set(urls)) == 500

    def test_brand_plus_credential_tokens(self):
        brands = (
            "paypal", "google", "amazon", "apple", "microsoft", "netflix",
            "facebook", "instagram", "chase", "wellsfargo", "dropbox", "adobe",
        )
        for url in confusable_urls(200, seed=1):
            assert any(b in url for b in brands)


class TestUrlDataset:
    def test_no_key_leakage_into_negatives(self):
        keys, negatives = url_dataset(800, 800, seed=3)
        assert not set(keys) & set(negatives)

    def test_mixture_control(self):
        _, random_only = url_dataset(200, 400, confusable_fraction=0.0, seed=3)
        _, confusable_only = url_dataset(
            200, 400, confusable_fraction=1.0, seed=3
        )
        brands = ("paypal", "google", "amazon", "apple", "microsoft",
                  "netflix", "facebook", "instagram", "chase", "wellsfargo",
                  "dropbox", "adobe")
        assert all(u.startswith("https://") for u in confusable_only)
        assert all(any(b in u for b in brands) for u in confusable_only)
        assert len(random_only) > 0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            url_dataset(10, 10, confusable_fraction=1.5)

    def test_classifier_separability(self):
        """A trivial bag-of-tokens score must separate easy negatives."""
        keys, negatives = url_dataset(500, 500, confusable_fraction=0.0, seed=3)

        def score(url: str) -> int:
            markers = ("login", "verify", "secure", ".xyz", ".tk", "http://")
            return sum(m in url for m in markers)

        key_scores = np.array([score(u) for u in keys])
        neg_scores = np.array([score(u) for u in negatives])
        assert key_scores.mean() > neg_scores.mean() + 0.5
