"""Unit tests for the feature-engineered multivariate model."""

import numpy as np
import pytest

from repro.models import FEATURE_LIBRARY, MultivariateLinearModel


class TestFeatureLibrary:
    def test_expected_features_present(self):
        for name in ("key", "key^2", "log", "sqrt"):
            assert name in FEATURE_LIBRARY

    def test_transforms_are_finite_on_negatives(self):
        x = np.array([-10.0, 0.0, 10.0])
        for name, (transform, _cost) in FEATURE_LIBRARY.items():
            assert np.all(np.isfinite(transform(x))), name


class TestMultivariateLinearModel:
    def test_rejects_unknown_feature(self):
        with pytest.raises(ValueError, match="unknown features"):
            MultivariateLinearModel(features=("key", "wat"))

    def test_rejects_empty_features(self):
        with pytest.raises(ValueError):
            MultivariateLinearModel(features=())

    def test_fits_quadratic_exactly(self):
        keys = np.linspace(1, 100, 200)
        positions = 3.0 * keys**2 + 2.0 * keys + 1.0
        model = MultivariateLinearModel(features=("key", "key^2"))
        model.fit(keys, positions)
        errors = np.abs(model.predict_batch(keys) - positions)
        assert errors.max() < 1e-6 * positions.max()

    def test_log_feature_fits_lognormal_cdf_better_than_line(self):
        rng = np.random.default_rng(0)
        keys = np.sort(rng.lognormal(0, 2, size=3000))
        positions = np.arange(keys.size, dtype=np.float64)
        line = MultivariateLinearModel(features=("key",)).fit(keys, positions)
        loggy = MultivariateLinearModel(features=("key", "log")).fit(
            keys, positions
        )
        line_err = np.abs(line.predict_batch(keys) - positions).mean()
        log_err = np.abs(loggy.predict_batch(keys) - positions).mean()
        assert log_err < line_err * 0.5

    def test_scalar_matches_batch(self):
        rng = np.random.default_rng(1)
        keys = np.sort(rng.uniform(1, 1000, size=500))
        model = MultivariateLinearModel(features=("key", "log", "key^2"))
        model.fit(keys, np.arange(500.0))
        for q in [1.5, 10.0, 999.0, 5000.0]:
            assert model.predict(q) == pytest.approx(
                float(model.predict_batch(np.array([q]))[0]), rel=1e-9
            )

    def test_auto_select_picks_subset(self):
        rng = np.random.default_rng(2)
        keys = np.sort(rng.lognormal(0, 2, size=2000))
        model = MultivariateLinearModel(
            features=("key", "log", "key^2"), auto_select=True
        )
        model.fit(keys, np.arange(2000.0))
        assert set(model.features) <= {"key", "log", "key^2"}
        assert len(model.features) >= 1

    def test_auto_select_beats_or_ties_full_set(self):
        rng = np.random.default_rng(3)
        keys = np.sort(rng.lognormal(0, 2, size=2000))
        positions = np.arange(2000.0)
        full = MultivariateLinearModel(features=("key", "log", "key^2"))
        full.fit(keys, positions)
        auto = MultivariateLinearModel(
            features=("key", "log", "key^2"), auto_select=True
        )
        auto.fit(keys, positions)
        full_err = np.abs(full.predict_batch(keys) - positions).max()
        auto_err = np.abs(auto.predict_batch(keys) - positions).max()
        assert auto_err <= full_err * 1.5

    def test_empty_fit(self):
        model = MultivariateLinearModel()
        model.fit(np.array([]), np.array([]))
        assert model.predict(1.0) == pytest.approx(0.0)

    def test_accounting(self):
        model = MultivariateLinearModel(features=("key", "log"))
        assert model.param_count == 7
        assert model.op_count() > 0
