"""Unit tests for the last-mile search strategies (Section 3.4)."""

import numpy as np
import pytest

from repro.core.search import (
    SEARCH_STRATEGIES,
    Counter,
    biased_binary_search,
    biased_quaternary_search,
    bounded_search,
    verify_lower_bound,
)


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(3)
    return np.unique(rng.integers(0, 10**6, size=3_000))


def truth(keys, q):
    return int(np.searchsorted(keys, q, side="left"))


class TestBiasedBinary:
    def test_matches_searchsorted_any_guess(self, keys):
        rng = np.random.default_rng(0)
        n = len(keys)
        for q in np.concatenate(
            [rng.choice(keys, 150), rng.integers(-5, 10**6 + 5, 150)]
        ):
            expected = truth(keys, q)
            for guess in (0, n - 1, expected, rng.integers(0, n)):
                got = biased_binary_search(keys, q, 0, n, int(guess))
                assert got == expected

    def test_perfect_guess_single_comparison_window(self, keys):
        q = int(keys[777])
        counter = Counter()
        biased_binary_search(keys, q, 770, 785, 777, counter)
        # perfect first probe collapses the window immediately
        assert counter.comparisons <= 5

    def test_respects_window(self, keys):
        expected = truth(keys, int(keys[100]))
        got = biased_binary_search(keys, int(keys[100]), 90, 110, 95)
        assert got == expected


class TestBiasedQuaternary:
    def test_matches_searchsorted(self, keys):
        rng = np.random.default_rng(1)
        n = len(keys)
        for q in np.concatenate(
            [rng.choice(keys, 150), rng.integers(-5, 10**6 + 5, 150)]
        ):
            expected = truth(keys, q)
            for sigma in (1, 4, 32):
                got = biased_quaternary_search(
                    keys, q, 0, n, expected, sigma=sigma
                )
                assert got == expected, (q, sigma)

    def test_bad_guess_still_correct(self, keys):
        n = len(keys)
        rng = np.random.default_rng(2)
        for q in rng.choice(keys, 100):
            guess = int(rng.integers(0, n))
            assert biased_quaternary_search(
                keys, int(q), 0, n, guess, sigma=2
            ) == truth(keys, q)

    def test_accurate_guess_cheaper_than_plain_binary(self, keys):
        c_quat, c_bin = Counter(), Counter()
        rng = np.random.default_rng(3)
        for q in rng.choice(keys, 200):
            expected = truth(keys, int(q))
            biased_quaternary_search(
                keys, int(q), 0, len(keys), expected, sigma=2, counter=c_quat
            )
            bounded_search(
                keys, int(q), 0, len(keys), expected, "binary", counter=c_bin
            )
        assert c_quat.comparisons < c_bin.comparisons


class TestBoundedSearchDispatch:
    def test_all_strategies_agree(self, keys):
        rng = np.random.default_rng(4)
        n = len(keys)
        for q in np.concatenate(
            [rng.choice(keys, 80), rng.integers(-5, 10**6 + 5, 80)]
        ):
            expected = truth(keys, q)
            for name in SEARCH_STRATEGIES:
                got = bounded_search(keys, q, 0, n, expected, name)
                assert got == expected, name

    def test_unknown_strategy(self, keys):
        with pytest.raises(KeyError, match="unknown strategy"):
            bounded_search(keys, 1.0, 0, 10, 5, "psychic")


class TestVerifyLowerBound:
    def test_accepts_correct(self, keys):
        q = int(keys[50])
        assert verify_lower_bound(keys, q, 50)

    def test_rejects_wrong(self, keys):
        q = int(keys[50])
        assert not verify_lower_bound(keys, q, 49)
        assert not verify_lower_bound(keys, q, 51)
        assert not verify_lower_bound(keys, q, -1)
        assert not verify_lower_bound(keys, q, len(keys) + 1)

    def test_boundaries(self, keys):
        below = int(keys[0]) - 1
        above = int(keys[-1]) + 1
        assert verify_lower_bound(keys, below, 0)
        assert verify_lower_bound(keys, above, len(keys))
