"""Unit tests for string tokenization (Section 3.5)."""

import numpy as np
import pytest

from repro.models import (
    lexicographic_scalar,
    lexicographic_scalar_batch,
    tokenize,
    tokenize_batch,
)


class TestTokenize:
    def test_ascii_values(self):
        vec = tokenize("AB", 4)
        np.testing.assert_array_equal(vec, [65.0, 66.0, 0.0, 0.0])

    def test_truncation(self):
        vec = tokenize("abcdef", 3)
        assert vec.shape == (3,)
        np.testing.assert_array_equal(vec, [97.0, 98.0, 99.0])

    def test_empty_string(self):
        np.testing.assert_array_equal(tokenize("", 3), np.zeros(3))

    def test_unicode_clamped(self):
        vec = tokenize("€", 1)  # euro sign, ord > 255
        assert vec[0] == 255.0

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            tokenize("a", 0)

    def test_batch_matches_single(self):
        keys = ["", "a", "hello", "zz"]
        batch = tokenize_batch(keys, 6)
        for row, key in zip(batch, keys):
            np.testing.assert_array_equal(row, tokenize(key, 6))


class TestLexicographicScalar:
    def test_preserves_order(self):
        keys = sorted(
            ["", "a", "aa", "ab", "b", "ba", "zzz", "document-17", "doz"]
        )
        scalars = [lexicographic_scalar(k, 8) for k in keys]
        assert scalars == sorted(scalars)
        # strict where prefixes differ within the window
        assert len(set(scalars)) == len(keys)

    def test_prefix_collapse_beyond_window(self):
        a = lexicographic_scalar("prefix-one", 6)
        b = lexicographic_scalar("prefix-two", 6)
        assert a == b  # identical in the first 6 chars

    def test_range(self):
        for key in ("", "a", "~~~~~~~~"):
            value = lexicographic_scalar(key, 8)
            assert 0.0 <= value < 1.0

    def test_batch_matches_single(self):
        keys = ["alpha", "beta", "", "gamma9", "aa/bb"]
        batch = lexicographic_scalar_batch(keys, 10)
        for key, expected in zip(keys, batch):
            assert lexicographic_scalar(key, 10) == pytest.approx(
                float(expected), rel=1e-12
            )

    def test_sorted_dataset_gives_sorted_scalars(self):
        from repro.data import string_dataset

        keys = string_dataset(500, seed=3)
        scalars = lexicographic_scalar_batch(keys, 16)
        assert np.all(np.diff(scalars) >= 0)
