"""Unit tests for the MLP framework and its RMI adapter."""

import numpy as np
import pytest

from repro.models import MLP, FrameworkModel, NeuralRegressionModel


class TestMLPConstruction:
    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            MLP(0)
        with pytest.raises(ValueError):
            MLP(1, hidden=(0,))
        with pytest.raises(ValueError):
            MLP(1, task="nope")

    def test_zero_hidden_is_linear(self):
        net = MLP(1, hidden=())
        assert len(net.weights) == 1
        assert net.param_count == 2  # 1 weight + 1 bias

    def test_param_count(self):
        net = MLP(1, hidden=(32, 32))
        expected = 1 * 32 + 32 + 32 * 32 + 32 + 32 * 1 + 1
        assert net.param_count == expected


class TestMLPGradients:
    @pytest.mark.parametrize("hidden", [(), (5,), (4, 3)])
    def test_regression_backprop_matches_finite_differences(self, hidden):
        rng = np.random.default_rng(0)
        net = MLP(2, hidden=hidden, seed=1)
        x = rng.normal(size=(6, 2))
        y = rng.normal(size=(6, 1))
        out, acts = net._forward(x)
        delta = 2.0 * (out - y) / x.shape[0]
        grads_w, grads_b = net._backward(acts, delta)
        num_w, num_b = net.finite_difference_gradients(x, y)
        for analytic, numeric in zip(grads_w + grads_b, num_w + num_b):
            scale = max(float(np.abs(numeric).max()), 1e-8)
            assert np.abs(analytic - numeric).max() / scale < 1e-5

    def test_classification_backprop_matches_finite_differences(self):
        rng = np.random.default_rng(0)
        net = MLP(3, hidden=(4,), task="classification", seed=2)
        x = rng.normal(size=(8, 3))
        y = rng.integers(0, 2, size=(8, 1)).astype(float)
        out, acts = net._forward(x)
        prob = 1.0 / (1.0 + np.exp(-out))
        delta = (prob - y) / x.shape[0]
        grads_w, grads_b = net._backward(acts, delta)
        num_w, num_b = net.finite_difference_gradients(x, y)
        for analytic, numeric in zip(grads_w + grads_b, num_w + num_b):
            scale = max(float(np.abs(numeric).max()), 1e-8)
            assert np.abs(analytic - numeric).max() / scale < 1e-4


class TestMLPTraining:
    def test_loss_decreases(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, size=(512, 1))
        y = np.sin(3 * x).ravel()
        net = MLP(1, hidden=(16,), seed=0)
        history = net.fit(x, y, epochs=60, batch_size=64, learning_rate=3e-3)
        assert history[-1] < history[0] * 0.3

    def test_sgd_optimizer(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, size=(256, 1))
        y = (2 * x + 1).ravel()
        net = MLP(1, hidden=(), seed=0)
        history = net.fit(
            x, y, epochs=40, optimizer="sgd", learning_rate=0.05
        )
        assert history[-1] < history[0]

    def test_rejects_unknown_optimizer(self):
        net = MLP(1)
        with pytest.raises(ValueError):
            net.fit(np.ones((4, 1)), np.ones(4), epochs=1, optimizer="mystery")

    def test_rejects_mismatched_rows(self):
        net = MLP(1)
        with pytest.raises(ValueError):
            net.fit(np.ones((4, 1)), np.ones(5), epochs=1)

    def test_classification_learns_separation(self):
        rng = np.random.default_rng(2)
        x = np.concatenate(
            [rng.normal(-2, 0.5, size=(200, 1)), rng.normal(2, 0.5, size=(200, 1))]
        )
        y = np.concatenate([np.zeros(200), np.ones(200)])
        net = MLP(1, hidden=(8,), task="classification", seed=0)
        net.fit(x, y, epochs=60, batch_size=64, learning_rate=1e-2)
        prob = net.forward(x).ravel()
        assert prob[:200].mean() < 0.2
        assert prob[200:].mean() > 0.8


class TestNeuralRegressionModel:
    def test_scalar_matches_batch(self):
        rng = np.random.default_rng(3)
        keys = np.sort(rng.uniform(0, 1e6, size=2000))
        model = NeuralRegressionModel(hidden=(8,), epochs=5)
        model.fit(keys, np.arange(2000.0))
        for q in keys[::251]:
            scalar = model.predict(float(q))
            batch = float(model.predict_batch(np.array([q]))[0])
            assert scalar == pytest.approx(batch, rel=1e-9, abs=1e-6)

    def test_learns_cdf_shape_better_than_a_line(self):
        rng = np.random.default_rng(4)
        keys = np.sort(rng.lognormal(0, 2, size=4000))
        positions = np.arange(4000.0)
        model = NeuralRegressionModel(
            hidden=(16, 16), epochs=80, seed=1, learning_rate=3e-3
        )
        model.fit(keys, positions)
        nn_err = np.abs(model.predict_batch(keys) - positions).mean()
        slope, intercept = np.polyfit(keys, positions, 1)
        line_err = np.abs(slope * keys + intercept - positions).mean()
        assert nn_err < line_err * 0.8
        assert nn_err < 4000 * 0.25

    def test_unfit_predicts_zero(self):
        model = NeuralRegressionModel()
        assert model.predict(5.0) == 0.0

    def test_training_sample_cap(self):
        keys = np.sort(np.random.default_rng(5).uniform(0, 1, size=5000))
        model = NeuralRegressionModel(
            hidden=(), epochs=2, max_train_samples=500
        )
        model.fit(keys, np.arange(5000.0))
        assert model.predict(0.5) == pytest.approx(2500.0, rel=0.2)


class TestFrameworkModel:
    def test_matches_underlying_network(self):
        rng = np.random.default_rng(6)
        keys = rng.uniform(0, 1, size=(128, 1))
        positions = (keys * 100).ravel()
        net = MLP(1, hidden=(4,), seed=0)
        net.fit(keys, positions, epochs=10)
        framework = FrameworkModel(net)
        for q in (0.1, 0.5, 0.9):
            direct = float(net.forward(np.array([[q]]))[0, 0])
            assert framework.predict(q) == pytest.approx(direct)

    def test_validates_feed(self):
        framework = FrameworkModel(MLP(1))
        with pytest.raises(KeyError):
            framework.run({})
        with pytest.raises(TypeError):
            framework.run({"key": np.array([[1]], dtype=np.int32)})
        with pytest.raises(ValueError):
            framework.run({"key": np.array([1.0])})
