"""Cross-module integration tests: full pipelines over real generators."""

import bisect

import numpy as np
import pytest

from repro import (
    BTreeIndex,
    ChainingHashMap,
    HybridIndex,
    LearnedBloomFilter,
    LearnedHashFunction,
    RandomHashFunction,
    RecursiveModelIndex,
    StringRMI,
    conflict_stats,
    synthesize,
)
from repro.core import RMIConfig
from repro.data import integer_dataset, string_dataset, url_dataset
from repro.models import GRUClassifier


class TestRangeIndexPipeline:
    @pytest.mark.parametrize("name", ["maps", "weblogs", "lognormal"])
    def test_rmi_and_btree_agree_on_every_dataset(self, name, rng):
        keys = integer_dataset(name, 30_000, seed=3).keys
        rmi = RecursiveModelIndex(keys, stage_sizes=(1, 300))
        btree = BTreeIndex(keys, page_size=128)
        queries = np.concatenate(
            [rng.choice(keys, 300), rng.integers(keys.min(), keys.max(), 300)]
        )
        for q in queries:
            assert rmi.lookup(float(q)) == btree.lookup(float(q))

    def test_rmi_smaller_and_no_less_accurate_than_btree(self):
        keys = integer_dataset("maps", 50_000, seed=3).keys
        # Paper ratio: leaves cover ~hundreds of keys each, so the model
        # is far smaller than one separator per 128-key page.
        rmi = RecursiveModelIndex(keys, stage_sizes=(1, 100))
        btree = BTreeIndex(keys, page_size=128)
        assert rmi.size_bytes() < btree.size_bytes()
        # mean search window comparable to a page
        assert rmi.stats.mean_window == 0  # no lookups yet
        rng = np.random.default_rng(0)
        for q in rng.choice(keys, 500):
            rmi.lookup(float(q))
        assert rmi.stats.mean_window < 4 * 128

    def test_lif_synthesis_end_to_end(self):
        keys = integer_dataset("lognormal", 20_000, seed=4).keys
        grid = [
            RMIConfig(num_leaves=50),
            RMIConfig(num_leaves=200),
            RMIConfig(
                root_kind="multivariate",
                root_features=("key", "log"),
                num_leaves=200,
            ),
        ]
        index, best, results = synthesize(keys, grid=grid, query_sample=300)
        assert len(results) == 3
        rng = np.random.default_rng(1)
        for q in rng.choice(keys, 200):
            assert index.lookup(float(q)) == int(
                np.searchsorted(keys, q, side="left")
            )

    def test_hybrid_on_hard_data_stays_correct(self, rng):
        from repro.data import clustered_keys

        keys = clustered_keys(30_000, clusters=15, spread=0.0002, seed=5)
        hybrid = HybridIndex(keys, stage_sizes=(1, 300), threshold=32)
        assert hybrid.replaced_leaf_count > 0
        for q in rng.choice(keys, 400):
            assert hybrid.lookup(float(q)) == int(
                np.searchsorted(keys, q, side="left")
            )


class TestStringPipeline:
    def test_string_rmi_over_generated_docids(self, rng):
        keys = string_dataset(10_000, seed=6)
        index = StringRMI(keys, num_leaves=300, hybrid_threshold=256)
        for i in rng.integers(0, len(keys), 300):
            assert index.lookup(keys[i]) == i
        for probe in ["00-", "99-", keys[500] + "z"]:
            assert index.lookup(probe) == bisect.bisect_left(keys, probe)


class TestPointIndexPipeline:
    def test_learned_hash_into_chained_map(self):
        keys = integer_dataset("maps", 30_000, seed=7).keys
        values = np.arange(keys.size)
        learned = LearnedHashFunction(
            keys, keys.size, stage_sizes=(1, keys.size // 10)
        )
        random_fn = RandomHashFunction(keys.size, seed=2)
        learned_stats = conflict_stats(learned, keys, keys.size)
        random_stats = conflict_stats(random_fn, keys, keys.size)
        assert learned_stats.conflict_rate < random_stats.conflict_rate

        learned_map = ChainingHashMap(keys.size, learned)
        learned_map.insert_batch(keys, values)
        random_map = ChainingHashMap(keys.size, random_fn)
        random_map.insert_batch(keys, values)
        assert learned_map.empty_slot_bytes() < random_map.empty_slot_bytes()
        rng = np.random.default_rng(0)
        for i in rng.integers(0, keys.size, 500):
            assert learned_map.get(int(keys[i])) == i


class TestExistencePipeline:
    def test_gru_learned_bloom_end_to_end(self):
        keys, negatives = url_dataset(3_000, 3_000, seed=8)
        third = len(negatives) // 3
        train = negatives[:third]
        val = negatives[third:2 * third]
        test = negatives[2 * third:]
        model = GRUClassifier(width=8, embedding_dim=16, max_length=40, seed=0)
        labels = np.array([1.0] * len(keys) + [0.0] * len(train))
        model.fit(
            keys + train, labels, epochs=2, batch_size=256, learning_rate=5e-3
        )
        lbf = LearnedBloomFilter(model, keys, val, target_fpr=0.05)
        # the existence-index contract, end to end
        assert all(k in lbf for k in keys[:600])
        assert lbf.measured_fpr(test) < 0.15
