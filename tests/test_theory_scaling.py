"""Unit tests for the Appendix A scaling analysis."""

import numpy as np
import pytest

from repro.theory import (
    dkw_bound,
    empirical_position_error,
    expected_position_error,
    expected_squared_cdf_error,
    fit_error_exponent,
)


class TestAnalyticForms:
    def test_variance_peaks_at_half(self):
        f = np.array([0.1, 0.5, 0.9])
        var = expected_squared_cdf_error(f, 100)
        assert var[1] > var[0]
        assert var[1] > var[2]
        assert var[1] == pytest.approx(0.25 / 100)

    def test_variance_shrinks_with_n(self):
        f = np.array([0.5])
        assert expected_squared_cdf_error(f, 10_000)[0] < (
            expected_squared_cdf_error(f, 100)[0]
        )

    def test_position_error_sqrt_growth(self):
        f = np.array([0.5])
        small = expected_position_error(f, 10_000)[0]
        large = expected_position_error(f, 40_000)[0]
        assert large / small == pytest.approx(2.0, rel=0.01)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            expected_squared_cdf_error(np.array([1.5]), 10)
        with pytest.raises(ValueError):
            expected_squared_cdf_error(np.array([0.5]), 0)


class TestDKW:
    def test_formula(self):
        assert dkw_bound(1000, 0.05) == pytest.approx(
            np.sqrt(np.log(2 / 0.05) / 2000)
        )

    def test_tightens_with_n(self):
        assert dkw_bound(10_000) < dkw_bound(100)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            dkw_bound(0)
        with pytest.raises(ValueError):
            dkw_bound(10, 2.0)

    def test_bound_holds_empirically(self):
        rng = np.random.default_rng(0)
        violations = 0
        trials = 40
        n = 2_000
        bound = dkw_bound(n, alpha=0.05)
        grid = np.linspace(0, 1, 500)
        for t in range(trials):
            sample = np.sort(rng.uniform(0, 1, size=n))
            empirical = np.searchsorted(sample, grid, side="right") / n
            if np.abs(empirical - grid).max() > bound:
                violations += 1
        assert violations <= trials * 0.15


class TestEmpiricalScaling:
    def test_uniform_error_exponent_near_half(self):
        def sampler(n, seed):
            return np.random.default_rng(seed).uniform(0, 1, size=n)

        def cdf(x):
            return np.clip(x, 0, 1)

        from repro.theory import ScalingMeasurement

        measurements = []
        for n in (1_000, 4_000, 16_000, 64_000, 256_000):
            errors = [
                empirical_position_error(sampler, cdf, n, seed=s).mean_absolute_error
                for s in range(8)
            ]
            measurements.append(
                ScalingMeasurement(n, float(np.mean(errors)), 0.0)
            )
        exponent = fit_error_exponent(measurements)
        assert exponent == pytest.approx(0.5, abs=0.15)

    def test_needs_two_measurements(self):
        def sampler(n, seed):
            return np.random.default_rng(seed).uniform(0, 1, size=n)

        m = empirical_position_error(sampler, lambda x: x, 100)
        with pytest.raises(ValueError):
            fit_error_exponent([m])
