"""Property-based tests (hypothesis) for the load-bearing invariants.

These pin the guarantees the paper's constructions depend on:

* every range index agrees with ``searchsorted`` lower-bound semantics
  for arbitrary key sets and arbitrary queries (present or absent);
* RMI error windows always contain the true position of stored keys;
* Bloom filters (standard and learned) never produce false negatives;
* hash maps round-trip arbitrary key/value sets under any hash;
* search strategies agree with bisect for any window and guess;
* tokenized scalar order agrees with lexicographic string order.
"""

import bisect

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bloom import BloomFilter
from repro.btree import (
    BTreeIndex,
    FASTTree,
    FixedSizeBTree,
    HierarchicalLookupTable,
    binary_search,
    exponential_search,
    interpolation_search,
)
from repro.core import RecursiveModelIndex
from repro.core.search import bounded_search
from repro.hashmap import ChainingHashMap, GenericCuckooHashMap, RandomHashFunction
from repro.models import LinearModel, lexicographic_scalar

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

key_sets = st.lists(
    st.integers(min_value=-(10**9), max_value=10**9),
    min_size=1,
    max_size=400,
    unique=True,
).map(lambda xs: np.array(sorted(xs), dtype=np.int64))

queries = st.lists(
    st.integers(min_value=-(2 * 10**9), max_value=2 * 10**9),
    min_size=1,
    max_size=30,
)


def lower_bound(keys: np.ndarray, q) -> int:
    return int(np.searchsorted(keys, q, side="left"))


class TestRangeIndexLowerBound:
    @COMMON
    @given(keys=key_sets, qs=queries, page=st.integers(1, 64))
    def test_btree(self, keys, qs, page):
        tree = BTreeIndex(keys, page_size=page)
        for q in qs:
            assert tree.lookup(float(q)) == lower_bound(keys, q)

    @COMMON
    @given(keys=key_sets, qs=queries, page=st.integers(1, 32))
    def test_fast_tree(self, keys, qs, page):
        tree = FASTTree(keys, page_size=page)
        for q in qs:
            assert tree.lookup(float(q)) == lower_bound(keys, q)

    @COMMON
    @given(keys=key_sets, qs=queries, group=st.integers(2, 64))
    def test_lookup_table(self, keys, qs, group):
        table = HierarchicalLookupTable(keys, group=group)
        for q in qs:
            assert table.lookup(float(q)) == lower_bound(keys, q)

    @COMMON
    @given(keys=key_sets, qs=queries, budget=st.integers(64, 4096))
    def test_fixed_btree(self, keys, qs, budget):
        tree = FixedSizeBTree(keys, size_budget_bytes=budget)
        for q in qs:
            assert tree.lookup(float(q)) == lower_bound(keys, q)

    @COMMON
    @given(
        keys=key_sets,
        qs=queries,
        leaves=st.integers(1, 64),
        strategy=st.sampled_from(
            ["binary", "biased_binary", "biased_quaternary", "exponential"]
        ),
    )
    def test_rmi(self, keys, qs, leaves, strategy):
        index = RecursiveModelIndex(
            keys, stage_sizes=(1, leaves), search_strategy=strategy
        )
        for q in qs:
            assert index.lookup(float(q)) == lower_bound(keys, q)
        # stored keys must also be found exactly
        for i in range(0, keys.size, max(keys.size // 10, 1)):
            assert index.lookup(float(keys[i])) == i


class TestRMIWindows:
    @COMMON
    @given(keys=key_sets, leaves=st.integers(1, 64))
    def test_windows_contain_truth(self, keys, leaves):
        index = RecursiveModelIndex(keys, stage_sizes=(1, leaves))
        for i in range(keys.size):
            _est, lo, hi = index.predict(float(keys[i]))
            assert lo <= i < hi


class TestSearchPrimitives:
    @COMMON
    @given(
        keys=key_sets,
        q=st.integers(-(2 * 10**9), 2 * 10**9),
        guess_frac=st.floats(0.0, 1.0),
    )
    def test_all_searches_agree_with_bisect(self, keys, q, guess_frac):
        expected = lower_bound(keys, q)
        guess = int(guess_frac * (len(keys) - 1))
        assert binary_search(keys, q) == expected
        assert interpolation_search(keys, q) == expected
        assert exponential_search(keys, q, guess) == expected
        for strategy in ("biased_binary", "biased_quaternary"):
            assert (
                bounded_search(keys, q, 0, len(keys), guess, strategy)
                == expected
            )

    @COMMON
    @given(
        keys=key_sets,
        lo_frac=st.floats(0.0, 1.0),
        width=st.integers(0, 50),
        q=st.integers(-(2 * 10**9), 2 * 10**9),
    )
    def test_windowed_binary_matches_bisect_window(
        self, keys, lo_frac, width, q
    ):
        n = len(keys)
        lo = int(lo_frac * n)
        hi = min(lo + width, n)
        expected = bisect.bisect_left(keys.tolist(), q, lo, hi)
        assert binary_search(keys, q, lo, hi) == expected


class TestBloomNoFalseNegatives:
    @COMMON
    @given(
        keys=st.lists(st.text(min_size=1, max_size=12), min_size=1, max_size=80, unique=True),
        fpr=st.floats(0.001, 0.2),
    )
    def test_standard_bloom(self, keys, fpr):
        bloom = BloomFilter.for_capacity(len(keys), fpr)
        bloom.add_batch(keys)
        assert all(k in bloom for k in keys)

    @COMMON
    @given(
        n_keys=st.integers(20, 120),
        miss=st.floats(0.0, 0.9),
        target=st.floats(0.005, 0.1),
    )
    def test_learned_bloom(self, n_keys, miss, target):
        from repro.core import LearnedBloomFilter

        keys = [f"key:{i}" for i in range(n_keys)]
        negatives = [f"neg:{i}" for i in range(200)]
        cut = int(n_keys * (1.0 - miss))

        class Model:
            def predict_proba(self, texts):
                return np.array([self.predict_proba_one(t) for t in texts])

            def predict_proba_one(self, text):
                kind, _, num = text.partition(":")
                if kind == "key":
                    return 0.9 if int(num) < cut else 0.1
                return 0.1

            def size_bytes(self):
                return 100

        lbf = LearnedBloomFilter(Model(), keys, negatives, target_fpr=target)
        assert all(k in lbf for k in keys)


class TestHashMapsRoundTrip:
    kv_sets = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10**12),
            st.integers(min_value=0, max_value=10**9),
        ),
        min_size=1,
        max_size=120,
        unique_by=lambda t: t[0],
    )

    @COMMON
    @given(kv=kv_sets, seed=st.integers(0, 100))
    def test_chaining(self, kv, seed):
        hm = ChainingHashMap(len(kv), RandomHashFunction(len(kv), seed=seed))
        for k, v in kv:
            hm.insert(k, v)
        for k, v in kv:
            assert hm.get(k) == v

    @COMMON
    @given(kv=kv_sets, seed=st.integers(0, 100))
    def test_generic_cuckoo(self, kv, seed):
        cuckoo = GenericCuckooHashMap(len(kv), seed=seed)
        for k, v in kv:
            assert cuckoo.insert(k, v)
        for k, v in kv:
            assert cuckoo.get(k) == v

    @COMMON
    @given(kv=kv_sets, seed=st.integers(0, 100))
    def test_absent_keys_return_none(self, kv, seed):
        hm = ChainingHashMap(len(kv), RandomHashFunction(len(kv), seed=seed))
        present = {k for k, _v in kv}
        for k, v in kv:
            hm.insert(k, v)
        for probe in range(10**12, 10**12 + 50):
            if probe not in present:
                assert hm.get(probe) is None


class TestModelsAndTokens:
    @COMMON
    @given(
        points=st.lists(
            st.tuples(
                st.floats(-1e6, 1e6),
                st.floats(-1e6, 1e6),
            ),
            min_size=2,
            max_size=60,
            unique_by=lambda t: t[0],
        )
    )
    def test_linear_model_residuals_orthogonal(self, points):
        keys = np.array([p[0] for p in points])
        positions = np.array([p[1] for p in points])
        model = LinearModel().fit(keys, positions)
        residuals = model.predict_batch(keys) - positions
        # least-squares optimality: residuals orthogonal to inputs
        scale = max(float(np.abs(positions).max()), 1.0) * max(
            float(np.abs(keys).max()), 1.0
        )
        assert abs(float(residuals.sum())) <= 1e-6 * scale * len(points)

    @COMMON
    @given(
        strings=st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=10,
            ),
            min_size=2,
            max_size=40,
        )
    )
    def test_lexicographic_scalar_order(self, strings):
        max_len = 12
        ordered = sorted(strings)
        scalars = [lexicographic_scalar(s, max_len) for s in ordered]
        assert all(a <= b for a, b in zip(scalars, scalars[1:]))


class TestEmpiricalCDFMonotone:
    @COMMON
    @given(keys=key_sets, qs=queries)
    def test_monotone_unit_interval(self, keys, qs):
        from repro.models import empirical_cdf

        values = empirical_cdf(keys, np.sort(np.asarray(qs, dtype=np.float64)))
        assert np.all((values >= 0) & (values <= 1))
        assert np.all(np.diff(values) >= 0)
