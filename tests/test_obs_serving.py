"""Cross-process tracing + metrics through the serving stack (ISSUE 9).

The acceptance path: a request enters :class:`CoalescingIndexServer`,
is stamped with a trace id, rides the coalescer tick into
:class:`ShardedLSMStore`'s pipe RPC, and the shard workers' own spans
(store lookup, WAL append, seal, shm republish) come back piggybacked
on the command acks — so one exported JSON trace holds client-side and
worker-side spans joined by the propagated trace id, and
``ShardedLSMStore.metrics()`` merges every worker's registry deltas
into one exact aggregate.
"""

import asyncio

import numpy as np
import pytest

from repro import obs
from repro.serving.coalescer import CoalescingIndexServer
from repro.serving.sharded import ShardedLSMStore


@pytest.fixture
def traced_store(tmp_path):
    prev = obs.set_enabled(True)
    obs.reset_tracing()
    obs.set_process_name("client")
    keys = np.arange(0, 50_000, dtype=np.int64)
    store = ShardedLSMStore(
        2,
        keys,
        path=str(tmp_path),
        read_via="worker",
        store_kwargs={"memtable_capacity": 512},
    )
    try:
        yield store, keys
    finally:
        store.close()
        obs.set_enabled(prev)
        obs.reset_tracing()


def test_traced_request_joins_client_and_worker_spans(traced_store):
    store, keys = traced_store

    async def drive():
        server = CoalescingIndexServer(store)
        got = await asyncio.gather(
            *(server.lookup(int(k)) for k in keys[:8])
        )
        assert got == [int(k) for k in keys[:8]]

    asyncio.run(drive())

    requests = [
        s for s in obs.all_spans() if s["name"] == "serving.request"
    ]
    assert len(requests) == 8
    trace = obs.export_trace(requests[0]["trace_id"])
    by_name = {}
    for s in trace["spans"]:
        by_name.setdefault(s["name"], []).append(s)

    # Client-side spans: the coalescer tick that served the request
    # and the sharded fanout it triggered.
    assert "coalesce.tick" in by_name
    assert "coalesce.store_call" in by_name
    assert "sharded.fanout" in by_name
    assert by_name["sharded.fanout"][0]["process"] != "shard-0"

    # Worker-side spans, recorded in the shard processes and shipped
    # back on the ack, land in the *same* exported trace.
    lookups = by_name["worker.lookup_batch"]
    assert {s["process"] for s in lookups} <= {"shard-0", "shard-1"}
    # ...and they parent onto the client's fanout span.
    fanout_ids = {s["span_id"] for s in by_name["sharded.fanout"]}
    assert all(s["parent_id"] in fanout_ids for s in lookups)


def test_traced_write_captures_wal_seal_and_republish(traced_store):
    store, _ = traced_store
    with obs.trace_scope() as tid:
        # 1000 new keys through 512-capacity memtables forces a seal
        # (and the shm republish that follows) in each shard.
        store.insert_batch(np.arange(200_000, 201_000, dtype=np.int64))
    names = {s["name"] for s in obs.trace_spans(tid)}
    assert {"sharded.fanout", "worker.insert_batch",
            "lsm.wal.append", "lsm.seal", "shm.publish"} <= names


def test_merged_metrics_are_exact(traced_store):
    store, keys = traced_store

    async def drive(n):
        server = CoalescingIndexServer(store)
        await asyncio.gather(
            *(server.lookup(int(k)) for k in keys[:n])
        )

    asyncio.run(drive(12))
    metrics = store.metrics()

    # Every worker-side lookup span was observed into that shard's
    # span.worker.lookup_batch histogram; the client counted the
    # batches it sent.  The piggybacked deltas must make those agree
    # exactly after the merge.
    per_shard = [
        snap.histograms.get("span.worker.lookup_batch")
        for snap in metrics.per_shard
    ]
    shard_counts = [h.count if h is not None else 0 for h in per_shard]
    sent = metrics.client.counters[
        "serving.sharded.lookup.worker_batches"
    ]
    assert sum(shard_counts) == sent > 0
    merged = metrics.merged.histograms["span.worker.lookup_batch"]
    assert merged.count == sum(shard_counts)
    # The merged registry also carries the client-side counters.
    assert (
        metrics.merged.counters["serving.sharded.lookup.worker_batches"]
        == sent
    )
    # And it exports: the demo/bench surface for this aggregate.
    text = obs.prometheus_text(metrics.merged)
    assert "repro_span_worker_lookup_batch_count" in text
    payload = metrics.to_dict()
    assert payload["merged"]["counters"][
        "serving.sharded.lookup.worker_batches"
    ] == sent
