"""Edge-case sweep for every index's range + batch APIs (ISSUE 2).

Pins behavior — not just absence of crashes — for: the empty index, a
single key, all-duplicate arrays, queries outside the key range,
inverted ranges (``low > high``), and empty batch inputs.  Every
ordered index type goes through the same sweep so a future refactor
cannot silently change the semantics of one family.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.btree import (
    BTreeIndex,
    FASTTree,
    FixedSizeBTree,
    GenericBTreeIndex,
    HierarchicalLookupTable,
)
from repro.core import (
    HybridIndex,
    RangeScanResult,
    RecursiveModelIndex,
    StringRMI,
    WritableLearnedIndex,
)

FACTORIES = {
    "rmi": lambda keys: RecursiveModelIndex(keys, stage_sizes=(1, 16)),
    "hybrid": lambda keys: HybridIndex(keys, stage_sizes=(1, 8), threshold=2),
    "btree": lambda keys: BTreeIndex(keys, page_size=8),
    "fixed_btree": lambda keys: FixedSizeBTree(keys, size_budget_bytes=1_024),
    "lookup_table": lambda keys: HierarchicalLookupTable(keys, group=8),
    "fast_tree": lambda keys: FASTTree(keys, page_size=8),
}

ALL_NAMES = sorted(FACTORIES)


def build(name: str, keys) -> object:
    return FACTORIES[name](np.asarray(keys, dtype=np.int64))


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEmptyIndex:
    def test_point_apis(self, name):
        index = build(name, [])
        assert index.lookup(5.0) == 0
        assert not index.contains(5.0)
        assert index.upper_bound(5.0) == 0
        np.testing.assert_array_equal(
            index.lookup_batch(np.array([1.0, 2.0])), [0, 0]
        )
        np.testing.assert_array_equal(
            index.contains_batch(np.array([1.0, 2.0])), [False, False]
        )

    def test_range_apis(self, name):
        index = build(name, [])
        assert len(index.range_query(1.0, 100.0)) == 0
        result = index.range_query_batch([1.0, 50.0], [100.0, 40.0])
        assert isinstance(result, RangeScanResult)
        assert len(result) == 2
        assert result.total == 0
        assert list(result.counts) == [0, 0]


@pytest.mark.parametrize("name", ALL_NAMES)
class TestSingleKey:
    def test_bounds_bracket_the_key(self, name):
        index = build(name, [42])
        assert index.lookup(41.0) == 0
        assert index.lookup(42.0) == 0
        assert index.lookup(43.0) == 1
        assert index.upper_bound(41.0) == 0
        assert index.upper_bound(42.0) == 1
        assert index.upper_bound(43.0) == 1

    def test_ranges_around_the_key(self, name):
        index = build(name, [42])
        assert list(index.range_query(42.0, 42.0)) == [42]
        assert list(index.range_query(0.0, 100.0)) == [42]
        assert len(index.range_query(43.0, 100.0)) == 0
        assert len(index.range_query(0.0, 41.0)) == 0
        result = index.range_query_batch(
            [42.0, 0.0, 43.0], [42.0, 100.0, 100.0]
        )
        assert list(result[0]) == [42]
        assert list(result[1]) == [42]
        assert list(result[2]) == []


@pytest.mark.parametrize("name", ALL_NAMES)
class TestAllDuplicates:
    KEYS = [7] * 64

    def test_lower_and_upper_bounds(self, name):
        index = build(name, self.KEYS)
        assert index.lookup(7.0) == 0
        assert index.upper_bound(7.0) == 64
        assert index.lookup(6.0) == 0
        assert index.lookup(8.0) == 64
        np.testing.assert_array_equal(
            index.lookup_batch(np.array([6.0, 7.0, 8.0])), [0, 0, 64]
        )
        if hasattr(index, "upper_bound_batch"):
            np.testing.assert_array_equal(
                index.upper_bound_batch(np.array([6.0, 7.0, 8.0])),
                [0, 64, 64],
            )

    def test_range_returns_whole_run(self, name):
        index = build(name, self.KEYS)
        assert len(index.range_query(7.0, 7.0)) == 64
        result = index.range_query_batch([7.0, 0.0, 8.0], [7.0, 100.0, 9.0])
        assert list(result.counts) == [64, 64, 0]
        assert result.total == 128


@pytest.mark.parametrize("name", ALL_NAMES)
class TestOutOfRangeAndInverted:
    KEYS = list(range(100, 200, 2))

    def test_queries_outside_key_range(self, name):
        index = build(name, self.KEYS)
        n = len(self.KEYS)
        assert index.lookup(-1e12) == 0
        assert index.lookup(1e12) == n
        assert index.upper_bound(-1e12) == 0
        assert index.upper_bound(1e12) == n
        assert not index.contains(99.0)
        assert not index.contains(201.0)
        assert len(index.range_query(0.0, 99.0)) == 0
        assert len(index.range_query(199.0, 500.0)) == 0
        assert len(index.range_query(0.0, 1e12)) == n

    def test_inverted_ranges_are_empty(self, name):
        index = build(name, self.KEYS)
        assert len(index.range_query(150.0, 120.0)) == 0
        result = index.range_query_batch(
            [150.0, 120.0, 1e12], [120.0, 150.0, -1e12]
        )
        assert list(result.counts)[0] == 0
        assert list(result.counts)[2] == 0
        expected = [k for k in self.KEYS if 120 <= k <= 150]
        assert list(result[1]) == expected

    def test_empty_batches(self, name):
        index = build(name, self.KEYS)
        assert index.lookup_batch(np.array([])).size == 0
        assert index.contains_batch(np.array([])).size == 0
        result = index.range_query_batch([], [])
        assert len(result) == 0
        assert result.total == 0
        assert list(result) == []

    def test_mismatched_endpoint_lengths_raise(self, name):
        index = build(name, self.KEYS)
        with pytest.raises(ValueError):
            index.range_query_batch([1.0, 2.0], [3.0])


class TestRangeScanResultContainer:
    def test_indexing_and_iteration(self):
        index = RecursiveModelIndex(
            np.arange(0, 100, dtype=np.int64), stage_sizes=(1, 4)
        )
        result = index.range_query_batch([10.0, 90.0], [12.0, 95.0])
        assert len(result) == 2
        assert list(result[0]) == [10, 11, 12]
        assert list(result[-1]) == [90, 91, 92, 93, 94, 95]
        assert [len(chunk) for chunk in result] == [3, 6]
        assert result.total == 9
        with pytest.raises(IndexError):
            result[2]
        with pytest.raises(IndexError):
            result[-3]
        # starts/ends expose the resolved positions for slice reuse.
        np.testing.assert_array_equal(result.starts, [10, 90])
        np.testing.assert_array_equal(result.ends, [13, 96])


class TestStringIndexEdgeCases:
    @pytest.mark.parametrize("keys", [[], ["only"]])
    def test_empty_and_single(self, keys):
        for index in (
            StringRMI(keys, num_leaves=4),
            GenericBTreeIndex(keys, page_size=8),
        ):
            assert index.range_query("a", "z") == (keys or [])
            assert index.range_query("z", "a") == []
            result = index.range_query_batch(["a", "z"], ["z", "a"])
            assert len(result) == 2
            assert list(result.counts)[1] == 0
            empty = index.range_query_batch([], [])
            assert len(empty) == 0 and empty.total == 0

    def test_all_duplicate_strings(self):
        keys = ["dup"] * 32
        for index in (
            StringRMI(keys, num_leaves=4),
            GenericBTreeIndex(keys, page_size=8),
        ):
            assert index.lookup("dup") == 0
            assert index.upper_bound("dup") == 32
            assert len(index.range_query("dup", "dup")) == 32
            result = index.range_query_batch(
                ["a", "dup", "e"], ["z", "dup", "f"]
            )
            assert list(result.counts) == [32, 32, 0]


class TestWritableEdgeCases:
    def test_empty_writable(self):
        index = WritableLearnedIndex()
        assert list(index.range_query(0, 100)) == []
        result = index.range_query_batch([0, 5], [100, 1])
        assert len(result) == 2 and result.total == 0
        assert len(index.range_query_batch([], [])) == 0

    def test_inverted_and_out_of_range(self):
        index = WritableLearnedIndex(
            np.arange(0, 1_000, 10, dtype=np.int64), merge_threshold=10**9
        )
        index.insert(5)
        index.delete(20)
        result = index.range_query_batch(
            [100, -500, 2_000, 0], [0, -100, 3_000, 30]
        )
        assert list(result[0]) == []  # inverted
        assert list(result[1]) == []  # below all keys
        assert list(result[2]) == []  # above all keys
        assert list(result[3]) == [0, 5, 10, 30]  # delta in, tombstone out
        assert result.starts is None and result.ends is None

    def test_float_endpoints_match_scalar(self):
        # Fractional endpoints must resolve exactly like the scalar
        # path (floats against main, truncated ints against the delta),
        # not get silently truncated before the main-index resolution.
        index = WritableLearnedIndex(
            np.arange(0, 100, 4, dtype=np.int64), merge_threshold=10**9
        )
        index.insert(5)
        lows = [0.5, 3.9, 10.0, 5.5, -0.5]
        highs = [4.0, 8.1, 3.5, 5.2, 4.2]
        result = index.range_query_batch(lows, highs)
        for i, (lo, hi) in enumerate(zip(lows, highs)):
            np.testing.assert_array_equal(
                result[i], index.range_query(lo, hi), err_msg=f"range {i}"
            )
        assert list(result[0]) == [4]   # 0 excluded: 0 < 0.5
        assert list(result[3]) == []    # inverted on the float values
