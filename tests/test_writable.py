"""Unit tests for the writable learned index (Appendix D.1)."""

import numpy as np
import pytest

from repro.core import WritableLearnedIndex
from repro.data import lognormal_keys


@pytest.fixture()
def base_keys():
    return lognormal_keys(20_000, seed=33)


class TestConstruction:
    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            WritableLearnedIndex(np.array([3, 1]))

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            WritableLearnedIndex(merge_threshold=0)

    def test_empty_start(self):
        index = WritableLearnedIndex()
        assert len(index) == 0
        assert not index.contains(5)


class TestInsert:
    def test_insert_then_contains(self, base_keys):
        index = WritableLearnedIndex(base_keys, stage_sizes=(1, 64))
        new_key = int(base_keys.max()) + 1000
        assert not index.contains(new_key)
        index.insert(new_key)
        assert index.contains(new_key)
        assert len(index) == base_keys.size + 1

    def test_duplicate_insert_idempotent(self, base_keys):
        index = WritableLearnedIndex(base_keys, stage_sizes=(1, 64))
        index.insert(int(base_keys[0]))  # already in main
        assert len(index) == base_keys.size
        index.insert(999_999_999_999)
        index.insert(999_999_999_999)
        assert len(index) == base_keys.size + 1

    def test_reads_see_both_sides(self, base_keys):
        index = WritableLearnedIndex(
            base_keys, stage_sizes=(1, 64), merge_threshold=10**9
        )
        top = int(base_keys.max())
        inserted = [top + 10, top + 20]
        index.insert_batch(inserted)
        assert index.delta_size == 2
        for key in inserted:
            assert index.contains(key)
        assert index.contains(int(base_keys[0]))

    def test_auto_merge_at_threshold(self, base_keys):
        index = WritableLearnedIndex(
            base_keys, stage_sizes=(1, 64), merge_threshold=50
        )
        rng = np.random.default_rng(0)
        for key in rng.integers(0, base_keys.max(), size=120):
            index.insert(int(key))
        assert index.merges >= 2
        assert index.delta_size < 50

    def test_insert_batch_merges_at_most_once(self, base_keys):
        """A bulk load lands the whole batch, then merges once."""
        index = WritableLearnedIndex(
            base_keys, stage_sizes=(1, 64), merge_threshold=50
        )
        rng = np.random.default_rng(0)
        fresh = rng.integers(0, base_keys.max(), size=120)
        index.insert_batch(fresh)
        assert index.merges == 1
        assert index.delta_size == 0
        for key in np.unique(fresh):
            assert index.contains(int(key))


class TestDelete:
    def test_delete_from_main(self, base_keys):
        index = WritableLearnedIndex(base_keys, stage_sizes=(1, 64))
        victim = int(base_keys[777])
        assert index.delete(victim)
        assert not index.contains(victim)
        assert len(index) == base_keys.size - 1

    def test_delete_from_delta(self, base_keys):
        index = WritableLearnedIndex(
            base_keys, stage_sizes=(1, 64), merge_threshold=10**9
        )
        key = int(base_keys.max()) + 5
        index.insert(key)
        assert index.delete(key)
        assert not index.contains(key)

    def test_delete_absent(self, base_keys):
        index = WritableLearnedIndex(base_keys, stage_sizes=(1, 64))
        assert not index.delete(int(base_keys.max()) + 123)

    def test_reinsert_after_delete(self, base_keys):
        index = WritableLearnedIndex(base_keys, stage_sizes=(1, 64))
        victim = int(base_keys[123])
        index.delete(victim)
        index.insert(victim)
        assert index.contains(victim)
        assert len(index) == base_keys.size

    def test_tombstones_fold_into_merge(self, base_keys):
        index = WritableLearnedIndex(base_keys, stage_sizes=(1, 64))
        victims = [int(base_keys[i]) for i in (5, 500, 5_000)]
        for victim in victims:
            index.delete(victim)
        index.merge()
        for victim in victims:
            assert not index.contains(victim)
        assert index._main.keys.size == base_keys.size - 3


class TestRangeQueries:
    def test_merged_view(self, base_keys):
        index = WritableLearnedIndex(
            base_keys, stage_sizes=(1, 64), merge_threshold=10**9
        )
        lo, hi = int(base_keys[1000]), int(base_keys[1100])
        inside = lo + 1
        while inside in set(base_keys[1000:1101].tolist()):
            inside += 1
        index.insert(inside)
        deleted = int(base_keys[1050])
        index.delete(deleted)
        hits = index.range_query(lo, hi)
        assert inside in hits
        assert deleted not in hits
        assert np.all(np.diff(hits) > 0)

    def test_matches_reference_after_workload(self, base_keys):
        rng = np.random.default_rng(4)
        index = WritableLearnedIndex(
            base_keys, stage_sizes=(1, 64), merge_threshold=200
        )
        reference = set(base_keys.tolist())
        for _ in range(500):
            if rng.random() < 0.6:
                key = int(rng.integers(0, base_keys.max() * 2))
                index.insert(key)
                reference.add(key)
            else:
                key = int(rng.choice(sorted(reference)))
                index.delete(key)
                reference.discard(key)
        lo, hi = sorted(
            (int(rng.integers(0, base_keys.max())),
             int(rng.integers(0, base_keys.max())))
        )
        expected = np.array(
            sorted(k for k in reference if lo <= k <= hi), dtype=np.int64
        )
        np.testing.assert_array_equal(index.range_query(lo, hi), expected)
        assert len(index) == len(reference)


class TestAppendFastPath:
    def test_appends_skip_retraining(self):
        keys = np.arange(0, 100_000, 5, dtype=np.int64)
        index = WritableLearnedIndex(
            keys, stage_sizes=(1, 64), merge_threshold=500
        )
        retrains_before = index.retrains
        # append keys continuing the same linear pattern
        appended = np.arange(100_000, 110_000, 5, dtype=np.int64)
        index.insert_batch(appended)
        index.merge()
        assert index.fast_appends >= 1
        assert index.retrains == retrains_before
        # correctness after the fast path
        for key in appended[::97]:
            assert index.contains(int(key))
        assert index.contains(int(keys[123]))
        assert not index.contains(3)

    def test_distribution_shift_forces_retrain(self):
        keys = np.arange(0, 100_000, 5, dtype=np.int64)
        index = WritableLearnedIndex(
            keys, stage_sizes=(1, 64), merge_threshold=10**9
        )
        retrains_before = index.retrains
        # appended keys wildly off the learned pattern
        shifted = np.arange(10**9, 10**9 + 2_000_000, 1_000, dtype=np.int64)
        index.insert_batch(shifted)
        index.merge()
        assert index.retrains > retrains_before
        for key in shifted[::199]:
            assert index.contains(int(key))

    def test_fast_path_can_be_disabled(self):
        keys = np.arange(0, 50_000, 5, dtype=np.int64)
        index = WritableLearnedIndex(
            keys,
            stage_sizes=(1, 32),
            merge_threshold=10**9,
            append_fast_path=False,
        )
        index.insert_batch(range(50_000, 52_000, 5))
        index.merge()
        assert index.fast_appends == 0
