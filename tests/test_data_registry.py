"""Unit tests for the dataset registry."""

import numpy as np
import pytest

from repro.data import INTEGER_DATASETS, integer_dataset, string_dataset


class TestRegistry:
    def test_paper_datasets_listed(self):
        assert INTEGER_DATASETS == ("maps", "weblogs", "lognormal")

    @pytest.mark.parametrize("name", INTEGER_DATASETS)
    def test_materializes_each(self, name):
        ds = integer_dataset(name, 2_000, seed=1)
        assert ds.name == name
        assert ds.n == 2_000
        assert np.all(np.diff(ds.keys) > 0)
        assert ds.description

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            integer_dataset("nope", 100)

    def test_ablation_datasets_available(self):
        for name in ("uniform", "normal", "clustered"):
            assert integer_dataset(name, 500, seed=1).n == 500

    def test_same_args_same_bytes(self):
        a = integer_dataset("maps", 1_000, seed=9).keys
        b = integer_dataset("maps", 1_000, seed=9).keys
        np.testing.assert_array_equal(a, b)

    def test_string_dataset(self):
        ids = string_dataset(300, seed=2)
        assert len(ids) == 300
        assert ids == sorted(ids)
