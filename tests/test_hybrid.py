"""Unit tests for hybrid indexes (Algorithm 1, Section 3.3)."""

import numpy as np
import pytest

from repro.core import HybridIndex, RecursiveModelIndex
from repro.data import clustered_keys


def truth(keys, q):
    return int(np.searchsorted(keys, q, side="left"))


@pytest.fixture(scope="module")
def adversarial_keys():
    return clustered_keys(20_000, clusters=10, spread=0.0005, seed=21)


class TestReplacement:
    def test_threshold_controls_replacement(self, adversarial_keys):
        strict = HybridIndex(adversarial_keys, stage_sizes=(1, 100), threshold=8)
        loose = HybridIndex(
            adversarial_keys, stage_sizes=(1, 100), threshold=10_000
        )
        assert strict.replaced_leaf_count > loose.replaced_leaf_count

    def test_huge_threshold_replaces_nothing(self, uniform_small):
        hybrid = HybridIndex(
            uniform_small, stage_sizes=(1, 100), threshold=10**9
        )
        assert hybrid.replaced_leaf_count == 0

    def test_zero_threshold_replaces_all_imperfect_leaves(
        self, adversarial_keys
    ):
        hybrid = HybridIndex(adversarial_keys, stage_sizes=(1, 50), threshold=0)
        # every leaf with any error at all becomes a B-Tree
        imperfect = sum(
            1
            for stats in hybrid.leaf_errors
            if stats.count and stats.max_absolute > 0
        )
        assert hybrid.replaced_leaf_count == imperfect

    def test_rejects_negative_threshold(self, uniform_small):
        with pytest.raises(ValueError):
            HybridIndex(uniform_small, threshold=-1)


class TestLookupCorrectness:
    @pytest.mark.parametrize("threshold", [0, 32, 128, 10**9])
    def test_present_and_absent(self, threshold, adversarial_keys, rng):
        hybrid = HybridIndex(
            adversarial_keys, stage_sizes=(1, 200), threshold=threshold
        )
        queries = np.concatenate(
            [
                rng.choice(adversarial_keys, 250),
                rng.integers(
                    adversarial_keys.min() - 5,
                    adversarial_keys.max() + 5,
                    250,
                ),
            ]
        )
        for q in queries:
            assert hybrid.lookup(float(q)) == truth(adversarial_keys, q)

    def test_matches_pure_rmi_semantics(self, lognormal_small, rng):
        rmi = RecursiveModelIndex(lognormal_small, stage_sizes=(1, 100))
        hybrid = HybridIndex(
            lognormal_small, stage_sizes=(1, 100), threshold=16
        )
        for q in rng.choice(lognormal_small, 200):
            assert rmi.lookup(float(q)) == hybrid.lookup(float(q))


class TestWorstCaseBound:
    def test_hybrid_bounds_bad_leaf_cost(self, adversarial_keys, rng):
        """Section 3.3: hybrids bound worst-case lookups to B-Tree cost."""
        pure = RecursiveModelIndex(adversarial_keys, stage_sizes=(1, 100))
        hybrid = HybridIndex(
            adversarial_keys, stage_sizes=(1, 100), threshold=64
        )
        assert hybrid.replaced_leaf_count > 0
        # hybrid replaces exactly the leaves whose window explodes
        worst_pure = max(s.window for s in pure.leaf_errors if s.count)
        remaining = [
            s.window
            for j, s in enumerate(hybrid.leaf_errors)
            if s.count and j not in hybrid.leaf_btrees
        ]
        if remaining:
            assert max(remaining) <= 2 * 64 + 2

    def test_replaced_fraction_reported(self, adversarial_keys):
        hybrid = HybridIndex(
            adversarial_keys, stage_sizes=(1, 100), threshold=16
        )
        assert 0.0 < hybrid.replaced_key_fraction <= 1.0


class TestAccounting:
    def test_size_includes_leaf_btrees(self, adversarial_keys):
        no_btrees = HybridIndex(
            adversarial_keys, stage_sizes=(1, 100), threshold=10**9
        )
        with_btrees = HybridIndex(
            adversarial_keys, stage_sizes=(1, 100), threshold=8
        )
        assert with_btrees.size_bytes() > no_btrees.size_bytes()

    def test_repr(self, uniform_small):
        hybrid = HybridIndex(uniform_small, stage_sizes=(1, 10))
        assert "HybridIndex" in repr(hybrid)
