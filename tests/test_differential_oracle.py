"""Differential fuzz oracle: every index vs a ``bisect`` reference.

Seeded random operation sequences (lookup / upper_bound / contains /
range_query and their batch variants) are replayed against a trivially
correct ``bisect``-based model for every ordered index type, over
duplicate-heavy and adversarially clustered key sets as well as the
usual regimes.  Any divergence — scalar or batch, present or absent
key, inverted or empty range — fails with the op that produced it, so
a regression in the batch engine, the sorted fast path, the window
clamping or the Section 3.4 fix-up surfaces as a concrete
counterexample rather than a statistical anomaly.
"""

from __future__ import annotations

import bisect

import numpy as np
import pytest

from repro.btree import (
    BTreeIndex,
    FASTTree,
    FixedSizeBTree,
    GenericBTreeIndex,
    HierarchicalLookupTable,
)
from repro.core import (
    HybridIndex,
    RecursiveModelIndex,
    StringRMI,
    WritableLearnedIndex,
)
from repro.families import GappedArrayIndex, PGMIndex, RadixSplineIndex
from repro.lsm import LearnedLSMStore

SEED = 0xD1FF


class Oracle:
    """The reference model: plain ``bisect`` over a sorted list."""

    def __init__(self, keys):
        self.keys = list(keys)

    def lookup(self, q) -> int:
        return bisect.bisect_left(self.keys, q)

    def upper_bound(self, q) -> int:
        return bisect.bisect_right(self.keys, q)

    def contains(self, q) -> bool:
        pos = self.lookup(q)
        return pos < len(self.keys) and self.keys[pos] == q

    def range_query(self, lo, hi) -> list:
        if hi < lo:
            return []
        return self.keys[self.lookup(lo):self.upper_bound(hi)]


# -- numeric indexes -----------------------------------------------------------

def numeric_keys(regime: str, rng: np.random.Generator) -> np.ndarray:
    """Key regimes the engine must survive, duplicates included."""
    if regime == "empty":
        return np.empty(0, dtype=np.int64)
    if regime == "single":
        return np.array([7], dtype=np.int64)
    if regime == "all_duplicates":
        return np.full(500, 123_456, dtype=np.int64)
    if regime == "duplicate_heavy":
        # ~20 distinct values shared by 1.5k keys: long equal runs that
        # cross page/leaf boundaries.
        values = np.sort(rng.integers(0, 10**6, 20))
        return np.sort(rng.choice(values, 1_500))
    if regime == "adversarial_clusters":
        # Tight clusters separated by huge gaps, plus duplicate runs —
        # the worst case for a linear leaf's error window.
        centers = rng.integers(0, 10**12, 8)
        parts = [
            c + rng.integers(0, 50, 200) for c in centers
        ]
        keys = np.sort(np.concatenate(parts))
        return np.sort(np.concatenate([keys, keys[::10]]))
    if regime == "uniform":
        return np.unique(rng.integers(0, 10**9, 2_000))
    raise ValueError(regime)


def numeric_probes(keys: np.ndarray, rng: np.random.Generator, n: int) -> np.ndarray:
    """Present keys, neighbours, and far out-of-range probes."""
    parts = [rng.integers(-(10**13), 10**13, n // 4)]
    if keys.size:
        lo, hi = int(keys.min()), int(keys.max())
        parts.append(rng.choice(keys, n // 2))
        parts.append(rng.choice(keys, n // 8) + rng.integers(-2, 3, n // 8))
        parts.append(rng.integers(lo - 5, hi + 6, n // 8))
    probes = np.concatenate(parts).astype(np.float64)
    rng.shuffle(probes)
    return probes


NUMERIC_FACTORIES = {
    "rmi_binary": lambda keys: RecursiveModelIndex(
        keys, stage_sizes=(1, 32), search_strategy="binary"
    ),
    "rmi_quaternary": lambda keys: RecursiveModelIndex(
        keys, stage_sizes=(1, 32), search_strategy="biased_quaternary"
    ),
    "hybrid": lambda keys: HybridIndex(keys, stage_sizes=(1, 16), threshold=4),
    "btree": lambda keys: BTreeIndex(keys, page_size=16),
    "fixed_btree": lambda keys: FixedSizeBTree(keys, size_budget_bytes=2_048),
    "lookup_table": lambda keys: HierarchicalLookupTable(keys, group=16),
    "fast_tree": lambda keys: FASTTree(keys, page_size=16),
    # PR 10 families: tiny ε so even the small oracle key sets split
    # into many segments and exercise the routing structures.
    "pgm": lambda keys: PGMIndex(keys, epsilon=4, epsilon_internal=2),
    "radix_spline": lambda keys: RadixSplineIndex(
        keys, epsilon=4, radix_bits=6
    ),
}

NUMERIC_REGIMES = [
    "empty",
    "single",
    "all_duplicates",
    "duplicate_heavy",
    "adversarial_clusters",
    "uniform",
]


@pytest.mark.parametrize("regime", NUMERIC_REGIMES)
@pytest.mark.parametrize("name", sorted(NUMERIC_FACTORIES))
def test_numeric_index_matches_oracle(name, regime):
    rng = np.random.default_rng(SEED + hash((name, regime)) % 2**16)
    keys = numeric_keys(regime, rng)
    index = NUMERIC_FACTORIES[name](keys)
    oracle = Oracle(int(k) for k in keys)
    probes = numeric_probes(keys, rng, 120)

    for q in probes:
        q = float(q)
        assert index.lookup(q) == oracle.lookup(q), (name, regime, "lookup", q)
        assert index.contains(q) == oracle.contains(q), (
            name, regime, "contains", q,
        )
        if hasattr(index, "upper_bound"):
            assert index.upper_bound(q) == oracle.upper_bound(q), (
                name, regime, "upper_bound", q,
            )

    # Batch ops replay the same probes plus range endpoints drawn to
    # include inverted, degenerate (low == high) and empty ranges.
    np.testing.assert_array_equal(
        index.lookup_batch(probes),
        np.array([oracle.lookup(float(q)) for q in probes]),
        err_msg=f"{name}/{regime} lookup_batch",
    )
    np.testing.assert_array_equal(
        index.contains_batch(probes),
        np.array([oracle.contains(float(q)) for q in probes]),
        err_msg=f"{name}/{regime} contains_batch",
    )
    if hasattr(index, "upper_bound_batch"):
        np.testing.assert_array_equal(
            index.upper_bound_batch(probes),
            np.array([oracle.upper_bound(float(q)) for q in probes]),
            err_msg=f"{name}/{regime} upper_bound_batch",
        )

    lows = numeric_probes(keys, rng, 60)
    highs = lows + rng.integers(-100, 10**6, lows.size)
    result = index.range_query_batch(lows, highs)
    assert len(result) == lows.size
    for i in range(lows.size):
        expected = oracle.range_query(float(lows[i]), float(highs[i]))
        got = result[i]
        assert list(got) == expected, (name, regime, "range", i)
        scalar = index.range_query(float(lows[i]), float(highs[i]))
        assert list(scalar) == expected, (name, regime, "range_scalar", i)


def test_generic_btree_matches_oracle_over_ints():
    """GenericBTreeIndex fuzzed with Python-int keys (object path)."""
    rng = np.random.default_rng(SEED)
    keys = sorted(int(k) for k in rng.choice(rng.integers(0, 5_000, 40), 800))
    tree = GenericBTreeIndex(keys, page_size=16)
    oracle = Oracle(keys)
    probes = [int(q) for q in rng.integers(-100, 5_100, 150)]
    for q in probes:
        assert tree.lookup(q) == oracle.lookup(q)
        assert tree.upper_bound(q) == oracle.upper_bound(q)
        assert tree.contains(q) == oracle.contains(q)
    lows = [int(q) for q in rng.integers(-100, 5_100, 50)]
    highs = [lo + int(d) for lo, d in zip(lows, rng.integers(-50, 500, 50))]
    result = tree.range_query_batch(lows, highs)
    for i, (lo, hi) in enumerate(zip(lows, highs)):
        assert list(result[i]) == oracle.range_query(lo, hi)
        assert tree.range_query(lo, hi) == oracle.range_query(lo, hi)


# -- string indexes ------------------------------------------------------------

def random_strings(rng: np.random.Generator, n: int, *, dup_every: int = 3):
    alphabet = "abcdxyz"
    out = []
    for _ in range(n):
        length = int(rng.integers(1, 8))
        out.append("".join(rng.choice(list(alphabet), length)))
    # Duplicate a third of them so equal runs exist.
    out.extend(out[::dup_every])
    return sorted(out)


@pytest.mark.parametrize("hybrid_threshold", [None, 1])
def test_string_rmi_matches_oracle(hybrid_threshold):
    rng = np.random.default_rng(SEED + 1)
    keys = random_strings(rng, 400)
    index = StringRMI(
        keys, num_leaves=24, hybrid_threshold=hybrid_threshold
    )
    oracle = Oracle(keys)
    probes = random_strings(rng, 60) + ["", "zzzz", keys[0], keys[-1] + "x"]
    for q in probes:
        assert index.lookup(q) == oracle.lookup(q), q
        assert index.upper_bound(q) == oracle.upper_bound(q), q
        assert index.contains(q) == oracle.contains(q), q
    lows = random_strings(rng, 40)
    highs = random_strings(rng, 40)
    result = index.range_query_batch(lows, highs)
    for i, (lo, hi) in enumerate(zip(lows, highs)):
        assert list(result[i]) == oracle.range_query(lo, hi)
        assert index.range_query(lo, hi) == oracle.range_query(lo, hi)


# -- writable index round-trip ---------------------------------------------------

class SetOracle:
    """Reference for the writable index: a plain Python set."""

    def __init__(self, keys=()):
        self.live = set(int(k) for k in keys)

    def insert(self, k):
        self.live.add(int(k))

    def insert_batch(self, keys):
        self.live.update(int(k) for k in keys)

    def delete(self, k):
        self.live.discard(int(k))

    def contains(self, k) -> bool:
        return int(k) in self.live

    def range_query(self, lo, hi) -> list:
        if hi < lo:
            return []
        return sorted(k for k in self.live if lo <= k <= hi)


def crosscheck_writable(index: WritableLearnedIndex, oracle: SetOracle, rng):
    probes = rng.integers(-100, 20_100, 300)
    np.testing.assert_array_equal(
        index.contains_batch(probes),
        np.array([oracle.contains(int(q)) for q in probes]),
    )
    # Live-rank lower/upper bounds (delta-merge aware lookup surface).
    live = sorted(oracle.live)
    np.testing.assert_array_equal(
        index.lookup_batch(probes.astype(np.float64)),
        np.array([bisect.bisect_left(live, int(q)) for q in probes]),
    )
    np.testing.assert_array_equal(
        index.upper_bound_batch(probes.astype(np.float64)),
        np.array([bisect.bisect_right(live, int(q)) for q in probes]),
    )
    for q in probes[:20]:
        assert index.lookup(int(q)) == bisect.bisect_left(live, int(q))
        assert index.upper_bound(int(q)) == bisect.bisect_right(live, int(q))
    lows = rng.integers(-100, 20_100, 40)
    highs = lows + rng.integers(-50, 2_000, 40)
    result = index.range_query_batch(lows, highs)
    for i in range(40):
        expected = oracle.range_query(int(lows[i]), int(highs[i]))
        assert list(result[i]) == expected, i
        assert list(index.range_query(int(lows[i]), int(highs[i]))) == expected


@pytest.mark.parametrize("build_mode", ["vectorized", "scalar"])
def test_writable_randomized_round_trip(build_mode):
    """Interleaved inserts/batch-inserts/deletes/merges vs the oracle.

    The full read surface (``contains_batch`` + ``range_query_batch``
    + scalar ``range_query``) is cross-checked after every merge and at
    the end, so a stale delta slice, a leaked tombstone, a bulk insert
    that loses keys, or a fast-path append that corrupts the error
    bounds all surface immediately.  Parametrized over ``build_mode``
    so every merge's rebuild is exercised under both the segmented fast
    build and the per-leaf reference loop.
    """
    rng = np.random.default_rng(SEED + 2)
    base = np.unique(rng.integers(0, 20_000, 1_200)).astype(np.int64)
    index = WritableLearnedIndex(
        base,
        stage_sizes=(1, 32),
        merge_threshold=10**9,
        build_mode=build_mode,
    )
    oracle = SetOracle(base)
    for step in range(1_000):
        op = rng.random()
        key = int(rng.integers(-50, 20_050))
        if op < 0.45:
            index.insert(key)
            oracle.insert(key)
        elif op < 0.55:
            batch = rng.integers(-50, 20_050, int(rng.integers(1, 60)))
            index.insert_batch(batch)
            oracle.insert_batch(batch)
        elif op < 0.9:
            index.delete(key)
            oracle.delete(key)
        else:
            index.merge()
            crosscheck_writable(index, oracle, rng)
    index.merge()
    crosscheck_writable(index, oracle, rng)
    assert len(index) == len(oracle.live)


def test_writable_auto_merge_round_trip():
    """Small merge_threshold: merges fire implicitly mid-sequence."""
    rng = np.random.default_rng(SEED + 3)
    index = WritableLearnedIndex(
        np.arange(0, 20_000, 7, dtype=np.int64),
        stage_sizes=(1, 32),
        merge_threshold=64,
    )
    oracle = SetOracle(range(0, 20_000, 7))
    merges_seen = index.merges
    for _ in range(600):
        key = int(rng.integers(-50, 20_050))
        op = rng.random()
        if op < 0.6:
            index.insert(key)
            oracle.insert(key)
        elif op < 0.7:
            # Bulk inserts can blow straight past the threshold; the
            # single trailing merge must still leave state consistent.
            batch = rng.integers(-50, 20_050, int(rng.integers(1, 90)))
            index.insert_batch(batch)
            oracle.insert_batch(batch)
        else:
            index.delete(key)
            oracle.delete(key)
        if index.merges != merges_seen:
            merges_seen = index.merges
            crosscheck_writable(index, oracle, rng)
    assert merges_seen > 0, "threshold never tripped; test is vacuous"
    crosscheck_writable(index, oracle, rng)


# -- LSM store round-trip --------------------------------------------------------

class KVOracle:
    """Reference for the LSM store: a dict plus a sorted key list."""

    def __init__(self):
        self.live: dict[int, int] = {}

    def insert(self, k, v):
        self.live[int(k)] = int(v)

    def delete(self, k):
        self.live.pop(int(k), None)

    def lookup(self, k):
        return self.live.get(int(k))

    def sorted_keys(self) -> list:
        return sorted(self.live)

    def range_query(self, lo, hi) -> list:
        if hi < lo:
            return []
        keys = self.sorted_keys()
        return keys[bisect.bisect_left(keys, lo):bisect.bisect_right(keys, hi)]


def crosscheck_lsm(store: LearnedLSMStore, oracle: KVOracle, rng):
    probes = rng.integers(-100, 30_100, 400)
    values, found = store.lookup_batch(probes)
    expected_found = np.array([oracle.lookup(int(q)) is not None for q in probes])
    np.testing.assert_array_equal(found, expected_found)
    hits = np.nonzero(expected_found)[0]
    np.testing.assert_array_equal(
        values[hits],
        np.array([oracle.lookup(int(probes[i])) for i in hits], dtype=np.int64),
    )
    np.testing.assert_array_equal(store.contains_batch(probes), expected_found)
    for q in probes[:25]:
        assert store.lookup(int(q)) == oracle.lookup(int(q))
    lows = rng.integers(-100, 30_100, 50)
    highs = lows + rng.integers(-50, 3_000, 50)
    result = store.range_query_batch(lows, highs)
    assert len(result) == 50
    for i in range(50):
        expected = oracle.range_query(int(lows[i]), int(highs[i]))
        assert list(result[i]) == expected, i
        if i < 10:
            assert list(store.range_query(int(lows[i]), int(highs[i]))) == expected


@pytest.mark.parametrize("policy", ["size_tiered", "leveled"])
def test_lsm_store_randomized_round_trip(policy):
    """Interleaved put/batch-put/delete/flush ops vs the dict oracle.

    The memtable is small enough that seals and policy compactions fire
    constantly mid-sequence; the full read surface is cross-checked
    after every compaction the policy triggers (so a merge that loses a
    key, resurrects a tombstoned one, or mis-orders newest-wins
    surfaces immediately) and again at the end, after an explicit full
    compaction.
    """
    rng = np.random.default_rng(SEED + 4)
    store = LearnedLSMStore(
        np.unique(rng.integers(0, 30_000, 2_000)).astype(np.int64),
        memtable_capacity=200,
        compaction=policy,
    )
    oracle = KVOracle()
    for k in store.runs[0].keys.tolist():
        oracle.insert(k, k)
    compactions_seen = store.write_stats.compactions
    for step in range(2_000):
        op = rng.random()
        key = int(rng.integers(-50, 30_050))
        if op < 0.4:
            value = int(rng.integers(0, 10**9))
            store.insert(key, value)
            oracle.insert(key, value)
        elif op < 0.5:
            batch = rng.integers(-50, 30_050, int(rng.integers(1, 80)))
            values = rng.integers(0, 10**9, batch.size)
            store.insert_batch(batch, values)
            for k, v in zip(batch.tolist(), values.tolist()):
                oracle.insert(k, v)
        elif op < 0.55:
            # Delete-then-reinsert: the resurrection case compaction
            # newest-wins ordering must get right.
            store.delete(key)
            store.insert(key, key)
            oracle.insert(key, key)
        elif op < 0.9:
            store.delete(key)
            oracle.delete(key)
        else:
            store.flush()
        if store.write_stats.compactions != compactions_seen:
            compactions_seen = store.write_stats.compactions
            crosscheck_lsm(store, oracle, rng)
    assert compactions_seen > 0, "no compaction fired; test is vacuous"
    crosscheck_lsm(store, oracle, rng)
    assert len(store) == len(oracle.live)
    store.compact()
    crosscheck_lsm(store, oracle, rng)
    assert len(store) == len(oracle.live)


@pytest.mark.parametrize("policy", ["size_tiered", "leveled"])
def test_lsm_matches_writable_reference(policy):
    """Key-only workloads: the LSM store and the single-run writable
    index are interchangeable (same live key sets, same range answers)."""
    rng = np.random.default_rng(SEED + 5)
    base = np.unique(rng.integers(0, 50_000, 3_000)).astype(np.int64)
    store = LearnedLSMStore(base, memtable_capacity=300, compaction=policy)
    reference = WritableLearnedIndex(
        base, stage_sizes=(1, 64), merge_threshold=500
    )
    for _ in range(1_500):
        key = int(rng.integers(0, 50_000))
        if rng.random() < 0.7:
            store.insert(key)
            reference.insert(key)
        else:
            store.delete(key)
            reference.delete(key)
    probes = rng.integers(-100, 50_100, 500)
    np.testing.assert_array_equal(
        store.contains_batch(probes), reference.contains_batch(probes)
    )
    lows = rng.integers(0, 50_000, 30)
    highs = lows + rng.integers(0, 2_000, 30)
    got = store.range_query_batch(lows, highs)
    expected = reference.range_query_batch(lows, highs)
    for i in range(30):
        np.testing.assert_array_equal(got[i], expected[i])


# -- exact 64-bit regimes (ISSUE 5) ----------------------------------------------
#
# The float-probe replay above cannot exercise keys beyond 2^53 (the
# probes themselves would round), so these regimes replay with native
# Python-int probes against the same bisect oracle: adjacent keys
# differing by 1 near 2^63, straddling the 2^53 float cliff, across
# every index type plus the paged index and both storage engines.


def huge_oracle_keys(regime: str, rng: np.random.Generator) -> np.ndarray:
    if regime == "straddle_2p53":
        parts = [
            np.arange(2**53 - 300, 2**53 + 300, dtype=np.int64),
            2**53 + np.cumsum(rng.integers(1, 4, 400)),
        ]
        return np.unique(np.concatenate(parts).astype(np.int64))
    if regime == "adjacent_2p63":
        parts = [
            np.arange(2**63 - 500, 2**63 - 1, dtype=np.int64),
            (2**63 - 40_000) + np.cumsum(rng.integers(1, 3, 700)),
        ]
        return np.unique(np.concatenate(parts).astype(np.int64))
    raise ValueError(regime)


def huge_oracle_probes(keys: np.ndarray, rng, n: int) -> list[int]:
    lo, hi = int(keys.min()), int(keys.max())
    picks = [int(k) for k in rng.choice(keys, n)]
    out = picks + [min(max(k + int(d), 0), hi) for k, d in
                   zip(picks, rng.integers(-2, 3, n))]
    out += [lo - 1, lo, hi - 1, hi]
    return out


HUGE_ORACLE_REGIMES = ["straddle_2p53", "adjacent_2p63"]


@pytest.mark.parametrize("regime", HUGE_ORACLE_REGIMES)
@pytest.mark.parametrize("name", sorted(NUMERIC_FACTORIES))
def test_numeric_index_matches_oracle_beyond_2p53(name, regime):
    rng = np.random.default_rng(SEED + hash((name, regime, 64)) % 2**16)
    keys = huge_oracle_keys(regime, rng)
    # The regime is only meaningful if float64 would collide keys.
    assert np.unique(keys.astype(np.float64)).size < keys.size
    index = NUMERIC_FACTORIES[name](keys)
    oracle = Oracle(int(k) for k in keys)
    probes = huge_oracle_probes(keys, rng, 100)

    for q in probes:
        assert index.lookup(q) == oracle.lookup(q), (name, regime, "lookup", q)
        assert index.contains(q) == oracle.contains(q), (
            name, regime, "contains", q,
        )
        if hasattr(index, "upper_bound"):
            assert index.upper_bound(q) == oracle.upper_bound(q), (
                name, regime, "upper_bound", q,
            )

    batch = np.array(probes, dtype=np.int64)
    np.testing.assert_array_equal(
        index.lookup_batch(batch),
        np.array([oracle.lookup(q) for q in probes]),
        err_msg=f"{name}/{regime} lookup_batch",
    )
    np.testing.assert_array_equal(
        index.contains_batch(batch),
        np.array([oracle.contains(q) for q in probes]),
        err_msg=f"{name}/{regime} contains_batch",
    )
    if hasattr(index, "upper_bound_batch"):
        np.testing.assert_array_equal(
            index.upper_bound_batch(batch),
            np.array([oracle.upper_bound(q) for q in probes]),
            err_msg=f"{name}/{regime} upper_bound_batch",
        )

    lows = np.array(huge_oracle_probes(keys, rng, 30), dtype=np.int64)
    highs = np.minimum(
        lows + rng.integers(0, 200, lows.size), np.int64(2**63 - 1)
    )
    result = index.range_query_batch(lows, highs)
    for i in range(lows.size):
        expected = oracle.range_query(int(lows[i]), int(highs[i]))
        assert list(result[i]) == expected, (name, regime, "range", i)
        scalar = index.range_query(int(lows[i]), int(highs[i]))
        assert list(scalar) == expected, (name, regime, "range_scalar", i)


@pytest.mark.parametrize("regime", HUGE_ORACLE_REGIMES)
def test_paged_index_matches_oracle_beyond_2p53(regime):
    from repro.core import PagedLearnedIndex

    rng = np.random.default_rng(SEED + hash(regime) % 2**16)
    keys = huge_oracle_keys(regime, rng)
    index = PagedLearnedIndex(keys, page_size=64)
    oracle = Oracle(int(k) for k in keys)
    probes = huge_oracle_probes(keys, rng, 80)
    batch = np.array(probes, dtype=np.int64)
    np.testing.assert_array_equal(
        index.lookup_batch(batch),
        np.array([oracle.lookup(q) for q in probes]),
    )
    scalar = np.array([
        page * index.page_size + slot
        for page, slot in (index.lookup(q) for q in probes)
    ])
    np.testing.assert_array_equal(
        scalar, np.array([oracle.lookup(q) for q in probes])
    )
    np.testing.assert_array_equal(
        index.contains_batch(batch),
        np.array([oracle.contains(q) for q in probes]),
    )
    lows = np.array(huge_oracle_probes(keys, rng, 25), dtype=np.int64)
    highs = np.minimum(
        lows + rng.integers(0, 150, lows.size), np.int64(2**63 - 1)
    )
    result = index.range_query_batch(lows, highs)
    for i in range(lows.size):
        assert list(result[i]) == oracle.range_query(
            int(lows[i]), int(highs[i])
        ), i


def test_writable_matches_oracle_beyond_2p53():
    rng = np.random.default_rng(SEED + 64)
    keys = huge_oracle_keys("adjacent_2p63", rng)
    index = WritableLearnedIndex(
        keys[::2].copy(), stage_sizes=(1, 32), merge_threshold=300
    )
    oracle = SetOracle(keys[::2])
    lo, hi = int(keys.min()) - 10, int(keys.max())
    for _ in range(600):
        key = min(int(rng.choice(keys)) + int(rng.integers(-2, 3)), hi)
        op = rng.random()
        if op < 0.5:
            index.insert(key)
            oracle.insert(key)
        elif op < 0.9:
            index.delete(key)
            oracle.delete(key)
        else:
            index.merge()
    index.merge()
    live = sorted(oracle.live)
    probes = huge_oracle_probes(keys, rng, 150)
    batch = np.array(probes, dtype=np.int64)
    np.testing.assert_array_equal(
        index.contains_batch(batch),
        np.array([oracle.contains(q) for q in probes]),
    )
    np.testing.assert_array_equal(
        index.lookup_batch(batch),
        np.array([bisect.bisect_left(live, q) for q in probes]),
    )
    np.testing.assert_array_equal(
        index.upper_bound_batch(batch),
        np.array([bisect.bisect_right(live, q) for q in probes]),
    )
    for q in probes[:20]:
        assert index.lookup(q) == bisect.bisect_left(live, q)


def test_lsm_store_matches_oracle_beyond_2p53():
    rng = np.random.default_rng(SEED + 65)
    keys = huge_oracle_keys("adjacent_2p63", rng)
    store = LearnedLSMStore(keys, memtable_capacity=150)
    oracle = KVOracle()
    for k in keys.tolist():
        oracle.insert(k, k)
    hi = int(keys.max())
    for _ in range(800):
        key = min(int(rng.choice(keys)) + int(rng.integers(-2, 3)), hi)
        op = rng.random()
        if op < 0.5:
            value = int(rng.integers(0, 10**9))
            store.insert(key, value)
            oracle.insert(key, value)
        else:
            store.delete(key)
            oracle.delete(key)
    probes = huge_oracle_probes(keys, rng, 200)
    batch = np.array(probes, dtype=np.int64)
    values, found = store.lookup_batch(batch)
    np.testing.assert_array_equal(
        found, np.array([oracle.lookup(q) is not None for q in probes])
    )
    hits = np.nonzero(found)[0]
    np.testing.assert_array_equal(
        values[hits],
        np.array([oracle.lookup(probes[i]) for i in hits], dtype=np.int64),
    )
    for q in probes[:25]:
        assert store.lookup(q) == oracle.lookup(q)
    lows = np.array(huge_oracle_probes(keys, rng, 30), dtype=np.int64)
    highs = np.minimum(
        lows + rng.integers(0, 120, lows.size), np.int64(2**63 - 1)
    )
    result = store.range_query_batch(lows, highs)
    items, item_values = store.range_items_batch(lows, highs)
    for i in range(lows.size):
        expected = oracle.range_query(int(lows[i]), int(highs[i]))
        assert list(result[i]) == expected, i
        assert list(items[i]) == expected, i
        o0, o1 = int(items.offsets[i]), int(items.offsets[i + 1])
        assert [oracle.lookup(int(k)) for k in items.values[o0:o1]] == list(
            item_values[o0:o1]
        ), i


# -- gapped-array (ALEX-style) writable family ---------------------------------

@pytest.mark.parametrize("regime", ["uniform", "duplicate_heavy"])
def test_gapped_array_matches_oracle_after_churn(regime):
    """The writable family vs a set-semantics bisect oracle, checked
    after every phase of an interleaved insert/delete churn."""
    rng = np.random.default_rng(SEED + hash(("gapped", regime)) % 2**16)
    keys = np.unique(numeric_keys(regime, rng))
    index = GappedArrayIndex(keys)
    live = set(int(k) for k in keys)
    universe = rng.integers(0, 10**6, 3_000)
    for phase in range(6):
        for v in universe[phase * 400:(phase + 1) * 400].tolist():
            if rng.random() < 0.6:
                index.insert(v)
                live.add(v)
            else:
                index.delete(v)
                live.discard(v)
        oracle = Oracle(sorted(live))
        probes = numeric_probes(np.array(sorted(live) or [0]), rng, 80)
        for q in probes:
            q = float(q)
            assert index.lookup(q) == oracle.lookup(q), (regime, phase, q)
            assert index.contains(q) == oracle.contains(q), (regime, phase, q)
            assert index.upper_bound(q) == oracle.upper_bound(q), (
                regime, phase, q,
            )
        batch = probes.astype(np.int64)
        np.testing.assert_array_equal(
            index.lookup_batch(batch),
            np.array([oracle.lookup(int(q)) for q in batch]),
            err_msg=f"{regime}/phase{phase} lookup_batch",
        )
        np.testing.assert_array_equal(
            index.contains_batch(batch),
            np.array([oracle.contains(int(q)) for q in batch]),
            err_msg=f"{regime}/phase{phase} contains_batch",
        )
        lows = batch[:30]
        highs = lows + rng.integers(0, 5_000, lows.size)
        result = index.range_query_batch(lows, highs)
        for i in range(lows.size):
            expected = oracle.range_query(int(lows[i]), int(highs[i]))
            assert list(result[i]) == expected, (regime, phase, i)
