"""Unit tests for the synthetic integer key generators."""

import numpy as np
import pytest

from repro.data import synthetic
from repro.data.synthetic import (
    clustered_keys,
    dedupe_sorted,
    hotspot_queries,
    lognormal_keys,
    normal_keys,
    scan_workload,
    sequential_keys,
    uniform_keys,
    zipf_gap_keys,
    zipfian_queries,
)


def _assert_canonical(keys: np.ndarray, n: int) -> None:
    assert keys.dtype == np.int64
    assert keys.size == n
    assert np.all(np.diff(keys) > 0), "keys must be strictly increasing"


class TestLognormal:
    def test_canonical_layout(self):
        _assert_canonical(lognormal_keys(2_000, seed=1), 2_000)

    def test_deterministic(self):
        a = lognormal_keys(1_000, seed=5)
        b = lognormal_keys(1_000, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_data(self):
        a = lognormal_keys(1_000, seed=5)
        b = lognormal_keys(1_000, seed=6)
        assert not np.array_equal(a, b)

    def test_heavy_tail(self):
        keys = lognormal_keys(5_000, seed=2)
        # Median far below mean is the heavy-tail signature.
        assert np.median(keys) < keys.mean() * 0.5

    def test_respects_explicit_max_key(self):
        keys = lognormal_keys(500, max_key=10_000, seed=3)
        assert keys.max() <= 10_000
        assert keys.min() >= 0

    def test_default_key_space_scales_with_n(self):
        small = lognormal_keys(500, seed=3)
        large = lognormal_keys(5_000, seed=3)
        assert large.max() > small.max()

    def test_saturated_head(self):
        # The paper-density default must create runs of consecutive
        # integers in the dense head of the distribution.
        keys = lognormal_keys(20_000, seed=4)
        gaps = np.diff(keys)
        assert (gaps == 1).mean() > 0.2


class TestUniform:
    def test_canonical_layout(self):
        _assert_canonical(uniform_keys(2_000, seed=1), 2_000)

    def test_spans_range(self):
        keys = uniform_keys(10_000, max_key=1_000_000, seed=1)
        assert keys.min() < 50_000
        assert keys.max() > 950_000

    def test_roughly_linear_cdf(self):
        keys = uniform_keys(10_000, max_key=1_000_000, seed=1)
        positions = np.arange(keys.size)
        fitted = np.polyfit(keys.astype(float), positions, 1)
        residual = positions - np.polyval(fitted, keys.astype(float))
        assert np.abs(residual).max() < keys.size * 0.02


class TestNormal:
    def test_canonical_layout(self):
        _assert_canonical(normal_keys(2_000, seed=1), 2_000)

    def test_concentrated_around_mean(self):
        keys = normal_keys(5_000, mu=0.5, sigma=0.05, seed=1)
        center = 0.5 * synthetic.DEFAULT_MAX_KEY
        within = np.abs(keys - center) < 0.2 * synthetic.DEFAULT_MAX_KEY
        assert within.mean() > 0.99


class TestClustered:
    def test_canonical_layout(self):
        _assert_canonical(clustered_keys(2_000, seed=1), 2_000)

    def test_has_large_gaps(self):
        keys = clustered_keys(5_000, clusters=5, spread=0.001, seed=1)
        gaps = np.diff(keys)
        # Step-like CDF: the biggest gap dwarfs the median gap.
        assert gaps.max() > 1000 * max(np.median(gaps), 1)


class TestSequential:
    def test_exact_progression(self):
        keys = sequential_keys(100, start=7, step=3)
        np.testing.assert_array_equal(keys, 7 + 3 * np.arange(100))

    def test_default(self):
        _assert_canonical(sequential_keys(50), 50)


class TestZipfGaps:
    def test_canonical_layout(self):
        _assert_canonical(zipf_gap_keys(2_000, seed=1), 2_000)

    def test_gap_distribution_is_heavy_tailed(self):
        keys = zipf_gap_keys(5_000, alpha=1.5, seed=1)
        gaps = np.diff(keys)
        # Zipf(1.5) gaps: unit gaps dominate but the tail is very long.
        assert (gaps == 1).mean() > 0.3
        assert gaps.max() > 100 * np.median(gaps)


class TestDedupeSorted:
    def test_sorts_and_dedupes(self):
        out = dedupe_sorted(np.array([5, 1, 5, 3, 1]))
        np.testing.assert_array_equal(out, [1, 3, 5])

    def test_dtype(self):
        assert dedupe_sorted(np.array([2.0, 1.0])).dtype == np.int64

    def test_empty(self):
        assert dedupe_sorted(np.array([])).size == 0


class TestFillUnique:
    def test_raises_when_space_too_small(self):
        with pytest.raises(RuntimeError):
            lognormal_keys(1_000, max_key=10, seed=1)


class TestSkewedWorkloads:
    KEYS = uniform_keys(3_000, seed=7)

    def test_zipfian_queries_are_stored_keys_and_skewed(self):
        qs = zipfian_queries(self.KEYS, 5_000, seed=3)
        assert qs.size == 5_000 and qs.dtype == np.float64
        assert np.isin(qs, self.KEYS.astype(np.float64)).all()
        # Zipf(1.1) popularity: the single hottest key dominates far
        # beyond the uniform expectation of 5000/3000 ≈ 1.7 hits.
        _, counts = np.unique(qs, return_counts=True)
        assert counts.max() > 100

    def test_zipfian_deterministic_per_seed(self):
        a = zipfian_queries(self.KEYS, 500, seed=3)
        b = zipfian_queries(self.KEYS, 500, seed=3)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, zipfian_queries(self.KEYS, 500, seed=4))

    def test_hotspot_concentration(self):
        qs = hotspot_queries(
            self.KEYS, 5_000, hot_fraction=0.01, hot_weight=0.9, seed=3
        )
        assert np.isin(qs, self.KEYS.astype(np.float64)).all()
        # ~90% of queries land on ~1% of distinct keys.
        _, counts = np.unique(qs, return_counts=True)
        top = np.sort(counts)[::-1][: max(self.KEYS.size // 100, 1) + 1]
        assert top.sum() > 0.8 * qs.size

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            hotspot_queries(self.KEYS, 10, hot_fraction=0.0)
        with pytest.raises(ValueError):
            hotspot_queries(self.KEYS, 10, hot_weight=1.5)

    @pytest.mark.parametrize("skew", ["uniform", "zipfian", "hotspot"])
    def test_scan_workload_shape(self, skew):
        lows, highs = scan_workload(
            self.KEYS, 2_000, scan_fraction=0.5, mean_span=50, skew=skew,
            seed=5,
        )
        assert lows.size == highs.size == 2_000
        assert (highs >= lows).all()
        points = (lows == highs).mean()
        # scan_fraction=0.5: about half the queries are points.
        assert 0.35 < points < 0.65
        assert np.isin(lows, self.KEYS.astype(np.float64)).all()
        assert np.isin(highs, self.KEYS.astype(np.float64)).all()

    def test_scan_workload_point_only_and_validation(self):
        lows, highs = scan_workload(self.KEYS, 100, scan_fraction=0.0, seed=5)
        np.testing.assert_array_equal(lows, highs)
        with pytest.raises(ValueError):
            scan_workload(self.KEYS, 10, skew="bogus")
        with pytest.raises(ValueError):
            scan_workload(self.KEYS, 10, mean_span=0)

    def test_empty_keys_give_empty_workloads(self):
        empty = np.empty(0, dtype=np.int64)
        assert zipfian_queries(empty, 10).size == 0
        assert hotspot_queries(empty, 10).size == 0
        lows, highs = scan_workload(empty, 10)
        assert lows.size == 0 and highs.size == 0


# -- 64-bit key domains (ISSUE 5) ----------------------------------------------

class TestKeyDomainParameterization:
    """Generators accept full 64-bit domains, not just the 1e9 default."""

    def test_uniform_min_key_domain(self):
        from repro.data import uniform_keys

        keys = uniform_keys(
            2_000, min_key=2**62, max_key=2**62 + 10**9, seed=1
        )
        assert keys.dtype == np.int64
        assert keys.size == 2_000
        assert int(keys.min()) >= 2**62
        assert np.all(keys[1:] > keys[:-1])

    def test_uniform_rejects_empty_domain(self):
        from repro.data import uniform_keys

        with pytest.raises(ValueError):
            uniform_keys(10, min_key=5, max_key=5)

    def test_normal_and_clustered_min_key(self):
        from repro.data import clustered_keys, normal_keys

        for gen in (normal_keys, clustered_keys):
            keys = gen(500, min_key=10**12, max_key=2 * 10**12, seed=2)
            assert int(keys.min()) >= 10**12
            assert int(keys.max()) <= 2 * 10**12
            assert np.all(keys[1:] > keys[:-1])


class TestU64Dense:
    def test_shape_and_dtype(self):
        from repro.data import u64_dense

        keys = u64_dense(4_000, seed=3)
        assert keys.dtype == np.uint64
        assert np.all(keys[1:] > keys[:-1])  # sorted unique

    def test_straddles_2p53_and_exceeds_2p63(self):
        from repro.data import u64_dense

        keys = u64_dense(4_000, seed=4)
        assert int(keys.min()) < 2**53 < int(keys.max())
        assert int(keys.max()) > 2**63

    def test_adjacent_keys_collide_in_float64(self):
        from repro.data import u64_dense

        keys = u64_dense(4_000, seed=5)
        # the generator's whole point: float64 cannot represent it
        assert np.unique(keys.astype(np.float64)).size < keys.size

    def test_start_override_and_validation(self):
        from repro.data import u64_dense

        keys = u64_dense(100, start=10**6, seed=6)
        assert int(keys.min()) >= 10**6
        with pytest.raises(ValueError):
            u64_dense(1)
        with pytest.raises(ValueError):
            u64_dense(10, max_gap=0)

    def test_osm_like_alias_and_registry(self):
        from repro.data import integer_dataset, osm_like, u64_dense

        np.testing.assert_array_equal(
            osm_like(500, seed=7), u64_dense(500, seed=7)
        )
        ds = integer_dataset("osm_like", 500, seed=7)
        np.testing.assert_array_equal(ds.keys, u64_dense(500, seed=7))

    def test_indexable_by_rmi_exactly(self):
        import bisect

        from repro.core import RecursiveModelIndex
        from repro.data import u64_dense

        keys = u64_dense(3_000, seed=8)
        index = RecursiveModelIndex(keys, stage_sizes=(1, 32))
        oracle = [int(k) for k in keys]
        rng = np.random.default_rng(9)
        probes = np.unique(
            np.concatenate([rng.choice(keys, 200),
                            rng.choice(keys, 200) + np.uint64(1)])
        )
        np.testing.assert_array_equal(
            index.lookup_batch(probes),
            np.array([bisect.bisect_left(oracle, int(q)) for q in probes]),
        )
