"""Unit tests for linear and spline regression models."""

import numpy as np
import pytest

from repro.models import ConstantModel, LinearModel, SplineSegmentModel


class TestLinearModel:
    def test_exact_on_linear_data(self):
        keys = np.array([10.0, 20.0, 30.0, 40.0])
        positions = np.array([0.0, 1.0, 2.0, 3.0])
        model = LinearModel().fit(keys, positions)
        assert model.slope == pytest.approx(0.1)
        assert model.predict(25.0) == pytest.approx(1.5)

    def test_least_squares_matches_polyfit(self):
        rng = np.random.default_rng(0)
        keys = np.sort(rng.uniform(0, 100, size=200))
        positions = 2.0 * keys + rng.normal(0, 1, size=200)
        model = LinearModel().fit(keys, positions)
        slope, intercept = np.polyfit(keys, positions, 1)
        assert model.slope == pytest.approx(slope)
        assert model.intercept == pytest.approx(intercept)

    def test_single_point(self):
        model = LinearModel().fit(np.array([5.0]), np.array([42.0]))
        assert model.slope == 0.0
        assert model.predict(999.0) == 42.0

    def test_empty(self):
        model = LinearModel().fit(np.array([]), np.array([]))
        assert model.predict(1.0) == 0.0

    def test_duplicate_keys(self):
        model = LinearModel().fit(
            np.array([7.0, 7.0, 7.0]), np.array([1.0, 2.0, 3.0])
        )
        assert model.slope == 0.0
        assert model.predict(7.0) == pytest.approx(2.0)

    def test_batch_matches_scalar(self):
        model = LinearModel(slope=1.5, intercept=-2.0)
        keys = np.array([0.0, 1.0, 2.5])
        batch = model.predict_batch(keys)
        for k, expected in zip(keys, batch):
            assert model.predict(float(k)) == pytest.approx(expected)

    def test_monotonicity_flag(self):
        assert LinearModel(slope=0.5).is_monotonic()
        assert not LinearModel(slope=-0.5).is_monotonic()

    def test_fit_endpoints_zero_error_at_ends(self):
        keys = np.array([0.0, 3.0, 50.0, 100.0])
        positions = np.array([0.0, 1.0, 2.0, 3.0])
        model = LinearModel().fit_endpoints(keys, positions)
        assert model.predict(0.0) == pytest.approx(0.0)
        assert model.predict(100.0) == pytest.approx(3.0)

    def test_accounting(self):
        model = LinearModel()
        assert model.param_count == 2
        assert model.size_bytes() == 16
        assert model.op_count() == 2


class TestConstantModel:
    def test_mean(self):
        model = ConstantModel().fit(np.array([1.0, 2.0]), np.array([4.0, 6.0]))
        assert model.predict(123.0) == pytest.approx(5.0)

    def test_empty_keeps_value(self):
        model = ConstantModel(3.0).fit(np.array([]), np.array([]))
        assert model.predict(0.0) == 3.0

    def test_monotonic(self):
        assert ConstantModel().is_monotonic()


class TestSplineSegmentModel:
    def test_interpolates_knots(self):
        keys = np.linspace(0, 100, 50)
        positions = np.arange(50.0)
        model = SplineSegmentModel(knots=8).fit(keys, positions)
        for k, p in zip(keys[::7], positions[::7]):
            assert model.predict(float(k)) == pytest.approx(p, abs=1.5)

    def test_monotone_by_construction(self):
        rng = np.random.default_rng(1)
        keys = np.sort(rng.uniform(0, 1000, size=300))
        model = SplineSegmentModel(knots=16).fit(keys, np.arange(300.0))
        probes = np.linspace(-10, 1010, 500)
        values = model.predict_batch(probes)
        assert np.all(np.diff(values) >= -1e-9)
        assert model.is_monotonic()

    def test_clamps_outside_range(self):
        model = SplineSegmentModel(knots=4).fit(
            np.array([10.0, 20.0, 30.0, 40.0]), np.array([0.0, 1.0, 2.0, 3.0])
        )
        assert model.predict(-100.0) == pytest.approx(0.0)
        assert model.predict(1e9) == pytest.approx(3.0)

    def test_batch_matches_scalar(self):
        rng = np.random.default_rng(2)
        keys = np.sort(rng.uniform(0, 100, size=64))
        model = SplineSegmentModel(knots=6).fit(keys, np.arange(64.0))
        probes = rng.uniform(-5, 105, size=32)
        batch = model.predict_batch(probes)
        for q, expected in zip(probes, batch):
            assert model.predict(float(q)) == pytest.approx(expected)

    def test_degenerate_inputs(self):
        assert SplineSegmentModel(knots=4).fit(
            np.array([]), np.array([])
        ).predict(5.0) == 0.0
        single = SplineSegmentModel(knots=4).fit(
            np.array([3.0]), np.array([9.0])
        )
        assert single.predict(3.0) == pytest.approx(9.0)

    def test_rejects_too_few_knots(self):
        with pytest.raises(ValueError):
            SplineSegmentModel(knots=1)
