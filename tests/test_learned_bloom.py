"""Unit tests for learned Bloom filters (Section 5)."""

import numpy as np
import pytest

from repro.bloom import BloomFilter
from repro.core import LearnedBloomFilter, ModelHashBloomFilter


class ScoreModel:
    """Deterministic stand-in classifier with a controllable score map.

    Scores keys by a hash-free rule so threshold behaviour is exactly
    testable without GRU training time.
    """

    def __init__(self, score_fn, model_bytes: int = 1000):
        self._score = score_fn
        self._bytes = model_bytes

    def predict_proba(self, texts):
        return np.array([self._score(t) for t in texts])

    def predict_proba_one(self, text):
        return float(self._score(text))

    def size_bytes(self):
        return self._bytes


def make_separable_data(n_keys=600, n_negs=900):
    keys = [f"key:{i:05d}" for i in range(n_keys)]
    negatives = [f"neg:{i:05d}" for i in range(n_negs)]
    model = ScoreModel(lambda t: 0.9 if t.startswith("key") else 0.1)
    return keys, negatives, model


def make_noisy_data(n_keys=600, n_negs=1200, miss_rate=0.3, seed=0):
    rng = np.random.default_rng(seed)
    keys = [f"key:{i:05d}" for i in range(n_keys)]
    negatives = [f"neg:{i:05d}" for i in range(n_negs)]
    hard_keys = set(
        rng.choice(n_keys, size=int(n_keys * miss_rate), replace=False)
    )

    def score(text):
        kind, _, num = text.partition(":")
        i = int(num)
        if kind == "key":
            return 0.05 if i in hard_keys else 0.95
        # a sliver of negatives look key-ish (but score strictly below
        # real keys, so threshold ties cannot wipe out the key set)
        return 0.85 if i % 97 == 0 else 0.05

    return keys, negatives, ScoreModel(score)


class TestLearnedBloomFilter:
    def test_zero_false_negatives_always(self):
        keys, negatives, model = make_noisy_data()
        val, test = negatives[:600], negatives[600:]
        lbf = LearnedBloomFilter(model, keys, val, target_fpr=0.02)
        assert all(k in lbf for k in keys)

    def test_fpr_within_budget(self):
        keys, negatives, model = make_noisy_data()
        val, test = negatives[:600], negatives[600:]
        lbf = LearnedBloomFilter(model, keys, val, target_fpr=0.05)
        assert lbf.measured_fpr(test) <= 0.08

    def test_overflow_scales_with_fnr(self):
        keys, negatives, easy_model = make_separable_data()
        val = negatives[:450]
        easy = LearnedBloomFilter(easy_model, keys, val, target_fpr=0.02)
        noisy_keys, noisy_negs, noisy_model = make_noisy_data(miss_rate=0.5)
        noisy = LearnedBloomFilter(
            noisy_model, noisy_keys, noisy_negs[:600], target_fpr=0.02
        )
        assert easy.false_negative_rate < 0.05
        assert noisy.false_negative_rate == pytest.approx(0.5, abs=0.05)
        assert noisy.overflow.size_bytes() > easy.overflow.size_bytes()

    def test_beats_plain_bloom_when_model_separates(self):
        keys, negatives, model = make_separable_data(n_keys=5_000)
        val = negatives[:450]
        small_model = ScoreModel(
            lambda t: 0.9 if t.startswith("key") else 0.1, model_bytes=500
        )
        lbf = LearnedBloomFilter(small_model, keys, val, target_fpr=0.01)
        plain = BloomFilter.for_capacity(len(keys), 0.01)
        assert lbf.size_bytes() < plain.size_bytes()

    def test_tuning_record(self):
        keys, negatives, model = make_noisy_data()
        lbf = LearnedBloomFilter(model, keys, negatives[:600], target_fpr=0.02)
        assert lbf.tuning.target_model_fpr == pytest.approx(0.01)
        assert 0.0 <= lbf.tuning.tau <= 1.0
        assert lbf.tuning.false_negative_rate == lbf.false_negative_rate

    def test_batch_matches_scalar(self):
        keys, negatives, model = make_noisy_data()
        lbf = LearnedBloomFilter(model, keys, negatives[:600], target_fpr=0.02)
        probes = keys[:50] + negatives[600:650]
        batch = lbf.contains_batch(probes)
        for probe, expected in zip(probes, batch):
            assert (probe in lbf) == bool(expected)

    def test_bad_parameters(self):
        keys, negatives, model = make_separable_data(60, 60)
        with pytest.raises(ValueError):
            LearnedBloomFilter(model, keys, negatives, target_fpr=0.0)
        with pytest.raises(ValueError):
            LearnedBloomFilter(
                model, keys, negatives, target_fpr=0.01, model_fpr_share=1.5
            )


class TestModelHashBloomFilter:
    def test_zero_false_negatives(self):
        keys, negatives, model = make_noisy_data()
        mh = ModelHashBloomFilter(
            model, keys, negatives[:600], target_fpr=0.02, bitmap_bits=4096
        )
        assert all(k in mh for k in keys)

    def test_fpr_below_target(self):
        keys, negatives, model = make_noisy_data()
        mh = ModelHashBloomFilter(
            model, keys, negatives[:600], target_fpr=0.05, bitmap_bits=4096
        )
        assert mh.measured_fpr(negatives[600:]) <= 0.08

    def test_bitmap_rejects_low_scores(self):
        keys, negatives, model = make_separable_data()
        mh = ModelHashBloomFilter(
            model, keys, negatives[:450], target_fpr=0.02, bitmap_bits=4096
        )
        # negatives scoring 0.1 land on an unset bitmap region
        assert mh.measured_fpr(negatives[450:]) == 0.0

    def test_batch_matches_scalar(self):
        keys, negatives, model = make_noisy_data()
        mh = ModelHashBloomFilter(
            model, keys, negatives[:600], target_fpr=0.02, bitmap_bits=4096
        )
        probes = keys[:40] + negatives[600:640]
        batch = mh.contains_batch(probes)
        for probe, expected in zip(probes, batch):
            assert (probe in mh) == bool(expected)

    def test_expected_total_fpr(self):
        keys, negatives, model = make_noisy_data()
        mh = ModelHashBloomFilter(
            model, keys, negatives[:600], target_fpr=0.02, bitmap_bits=4096
        )
        assert mh.expected_total_fpr() <= 0.021

    def test_bad_parameters(self):
        keys, negatives, model = make_separable_data(60, 60)
        with pytest.raises(ValueError):
            ModelHashBloomFilter(model, keys, negatives, target_fpr=2.0)
        with pytest.raises(ValueError):
            ModelHashBloomFilter(
                model, keys, negatives, target_fpr=0.01, bitmap_bits=2
            )
