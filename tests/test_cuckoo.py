"""Unit tests for the cuckoo hash maps (Appendix C)."""

import numpy as np
import pytest

from repro.hashmap import BucketizedCuckooHashMap, GenericCuckooHashMap


@pytest.fixture()
def kv(rng):
    keys = np.unique(rng.integers(0, 10**12, size=8_000))
    values = rng.integers(0, 10**9, size=keys.size)
    return keys, values


class TestBucketizedCuckoo:
    def test_roundtrip_at_99_percent(self, kv):
        keys, values = kv
        cuckoo = BucketizedCuckooHashMap(int(keys.size / 0.99))
        for k, v in zip(keys, values):
            assert cuckoo.insert(int(k), int(v))
        assert cuckoo.utilization > 0.95
        for i in range(0, keys.size, 61):
            assert cuckoo.get(int(keys[i])) == int(values[i])

    def test_missing_key(self, kv):
        keys, values = kv
        cuckoo = BucketizedCuckooHashMap(keys.size * 2)
        for k, v in zip(keys[:100], values[:100]):
            cuckoo.insert(int(k), int(v))
        assert cuckoo.get(int(keys.max()) + 5) is None

    def test_overwrite(self):
        cuckoo = BucketizedCuckooHashMap(64)
        cuckoo.insert(5, 1)
        cuckoo.insert(5, 2)
        assert cuckoo.get(5) == 2
        assert len(cuckoo) == 1

    def test_bucket_slots_override(self):
        narrow = BucketizedCuckooHashMap(1024, bucket_slots=4)
        assert narrow.BUCKET_SLOTS == 4
        with pytest.raises(ValueError):
            BucketizedCuckooHashMap(64, bucket_slots=0)

    def test_value_bytes_changes_size(self):
        small = BucketizedCuckooHashMap(1024, value_bytes=4)
        large = BucketizedCuckooHashMap(1024, value_bytes=12)
        assert large.size_bytes() > small.size_bytes()

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            BucketizedCuckooHashMap(0)


class TestGenericCuckoo:
    def test_roundtrip_at_95_percent(self, kv):
        keys, values = kv
        cuckoo = GenericCuckooHashMap(keys.size)
        for k, v in zip(keys, values):
            assert cuckoo.insert(int(k), int(v))
        assert cuckoo.utilization == pytest.approx(0.95, abs=0.03)
        for i in range(0, keys.size, 61):
            assert cuckoo.get(int(keys[i])) == int(values[i])

    def test_missing_and_overwrite(self):
        cuckoo = GenericCuckooHashMap(100)
        cuckoo.insert(1, 10)
        cuckoo.insert(1, 20)
        assert cuckoo.get(1) == 20
        assert cuckoo.get(2) is None
        assert len(cuckoo) == 1

    def test_growth_under_pressure(self, rng):
        # Tiny map forced far past its capacity must grow, not fail.
        cuckoo = GenericCuckooHashMap(16, stash_size=2)
        keys = np.unique(rng.integers(0, 10**9, size=500))
        for i, k in enumerate(keys):
            assert cuckoo.insert(int(k), i)
        for i, k in enumerate(keys[::17]):
            assert cuckoo.get(int(k)) == int(np.where(keys == k)[0][0])

    def test_rejects_sentinel_key(self):
        cuckoo = GenericCuckooHashMap(16)
        with pytest.raises(ValueError):
            cuckoo.insert(-(2**62), 1)

    def test_rejects_bad_utilization(self):
        with pytest.raises(ValueError):
            GenericCuckooHashMap(100, target_utilization=0.999)

    def test_contains(self):
        cuckoo = GenericCuckooHashMap(32)
        cuckoo.insert(7, 70)
        assert 7 in cuckoo
        assert 8 not in cuckoo
