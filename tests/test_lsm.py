"""Unit tests for the learned LSM storage engine (Appendix D.1)."""

import numpy as np
import pytest

from repro.bloom import BloomFilter
from repro.lsm import (
    LearnedLSMStore,
    LeveledCompaction,
    Memtable,
    SizeTieredCompaction,
    SortedRun,
    merge_runs,
)
from repro.range_scan import RangeScanResult, merge_scan_results


# -- memtable ------------------------------------------------------------------

class TestMemtable:
    def test_put_get_delete(self):
        mem = Memtable()
        mem.put(5, 50)
        assert mem.get(5) == 50
        assert mem.has_put(5)
        mem.put(5, 51)
        assert mem.get(5) == 51
        assert len(mem) == 1
        mem.delete(5)
        assert not mem.has_put(5)
        assert mem.is_tombstone(5)
        assert len(mem) == 1  # the tombstone is an entry

    def test_put_overrides_tombstone(self):
        mem = Memtable()
        mem.delete(9)
        mem.put(9, 90)
        assert not mem.is_tombstone(9)
        assert mem.get(9) == 90

    def test_put_batch_last_wins(self):
        mem = Memtable()
        mem.put_batch([3, 1, 3], [30, 10, 31])
        assert mem.get(3) == 31
        np.testing.assert_array_equal(mem.put_keys(), [1, 3])
        np.testing.assert_array_equal(mem.put_values(), [10, 31])

    def test_sorted_views_track_mutations(self):
        mem = Memtable()
        mem.put_batch([5, 2, 9], [1, 2, 3])
        np.testing.assert_array_equal(mem.put_keys(), [2, 5, 9])
        mem.delete(5)
        np.testing.assert_array_equal(mem.put_keys(), [2, 9])
        np.testing.assert_array_equal(mem.tombstone_keys(), [5])

    def test_snapshot_interleaves_tombstones(self):
        mem = Memtable()
        mem.put_batch([2, 8], [20, 80])
        mem.delete(5)
        keys, values, dead = mem.snapshot()
        np.testing.assert_array_equal(keys, [2, 5, 8])
        np.testing.assert_array_equal(dead, [False, True, False])
        np.testing.assert_array_equal(values[~dead], [20, 80])

    def test_remove_put_primitive(self):
        mem = Memtable()
        mem.put(4, 40)
        assert mem.remove_put(4)
        assert not mem.remove_put(4)
        assert not mem.is_tombstone(4)  # remove_put never tombstones


# -- sorted runs ---------------------------------------------------------------

class TestSortedRun:
    def test_seal_roundtrip(self):
        """A sealed memtable answers exactly what was buffered."""
        rng = np.random.default_rng(1)
        mem = Memtable()
        keys = rng.choice(10_000, 2_000, replace=False)
        vals = rng.integers(0, 10**6, 2_000)
        mem.put_batch(keys, vals)
        for k in keys[:100]:
            mem.delete(int(k))
        run = SortedRun(*mem.snapshot())
        hit, dead, got = run.probe_batch(np.sort(keys))
        assert hit.all()
        assert int(dead.sum()) == len(set(keys[:100].tolist()))
        lookup = dict(zip(keys.tolist(), vals.tolist()))
        order = np.argsort(keys)
        expected = np.array([lookup[int(k)] for k in np.sort(keys)])
        live = ~dead
        np.testing.assert_array_equal(got[live], expected[live])

    def test_rejects_unsorted_or_duplicate(self):
        with pytest.raises(ValueError):
            SortedRun(np.array([3, 1]))
        with pytest.raises(ValueError):
            SortedRun(np.array([1, 1]))

    def test_bloom_has_no_false_negatives(self):
        keys = np.arange(0, 50_000, 7, dtype=np.int64)
        run = SortedRun(keys)
        assert run.bloom_contains_batch(keys).all()

    def test_bloom_rejects_most_absent(self):
        keys = np.arange(0, 50_000, 7, dtype=np.int64)
        run = SortedRun(keys, bloom_fpr=0.01)
        absent = np.arange(1, 50_000, 7, dtype=np.int64)
        assert run.bloom_contains_batch(absent).mean() < 0.05

    def test_range_scan_flags_tombstones(self):
        keys = np.arange(10, dtype=np.int64)
        dead = np.zeros(10, dtype=bool)
        dead[3] = dead[7] = True
        run = SortedRun(keys, tombstones=dead)
        result, flags = run.range_scan_batch([0.0, 6.0], [5.0, 20.0])
        np.testing.assert_array_equal(result[0], [0, 1, 2, 3, 4, 5])
        np.testing.assert_array_equal(
            flags[:6], [False, False, False, True, False, False]
        )


# -- compaction ----------------------------------------------------------------

def _run(keys, dead=(), level=0, seq=0):
    keys = np.asarray(keys, dtype=np.int64)
    mask = np.isin(keys, np.asarray(list(dead), dtype=np.int64))
    return SortedRun(keys, tombstones=mask, level=level, sequence=seq)


class TestMergeRuns:
    def test_newest_wins(self):
        new = SortedRun(np.array([1, 5]), np.array([100, 500]))
        old = SortedRun(np.array([1, 9]), np.array([-1, 900]))
        merged = merge_runs([new, old], drop_tombstones=False)
        np.testing.assert_array_equal(merged.keys, [1, 5, 9])
        np.testing.assert_array_equal(merged.values, [100, 500, 900])

    def test_tombstone_shadows_older_key(self):
        new = _run([5], dead=[5])
        old = _run([1, 5])
        kept = merge_runs([new, old], drop_tombstones=False)
        np.testing.assert_array_equal(kept.keys, [1, 5])
        assert kept.tombstones[1]  # marker survives for deeper runs
        gc = merge_runs([new, old], drop_tombstones=True)
        np.testing.assert_array_equal(gc.keys, [1])
        assert gc.num_tombstones == 0

    def test_put_resurrects_tombstoned_key(self):
        newest = _run([5])           # re-insert
        middle = _run([5], dead=[5])  # older delete
        oldest = _run([5, 6])
        merged = merge_runs([newest, middle, oldest], drop_tombstones=True)
        np.testing.assert_array_equal(merged.keys, [5, 6])


class TestPolicies:
    def test_size_tiered_waits_for_min_runs(self):
        policy = SizeTieredCompaction(min_runs=4)
        runs = [_run(np.arange(100)) for _ in range(3)]
        assert policy.select(runs) is None
        runs.insert(0, _run(np.arange(100)))
        assert policy.select(runs) == (0, 4, 0)

    def test_size_tiered_ignores_mixed_buckets(self):
        policy = SizeTieredCompaction(min_runs=2)
        runs = [_run(np.arange(100)), _run(np.arange(10_000))]
        assert policy.select(runs) is None

    def test_size_tiered_backstop_bounds_run_count(self):
        """Alternating buckets can never form a streak; the max_runs
        backstop must still merge the oldest window (regression for a
        degenerate workload that stranded hundreds of runs)."""
        policy = SizeTieredCompaction(min_runs=2, max_runs=4)
        runs = [
            _run(np.arange(100 if i % 2 else 10_000)) for i in range(4)
        ]
        assert policy.select(runs) == (2, 4, 0)
        # And end-to-end: a confined keyspace with heavy deletes keeps
        # the run count bounded by the backstop.
        rng = np.random.default_rng(6)
        store = LearnedLSMStore(
            memtable_capacity=7,
            compaction=SizeTieredCompaction(min_runs=2, max_runs=8),
        )
        for _ in range(1_500):
            if rng.random() < 0.5:
                store.insert(int(rng.integers(0, 500)))
            else:
                store.delete(int(rng.integers(0, 500)))
        assert store.num_runs < 8

    def test_leveled_folds_l0_into_l1(self):
        policy = LeveledCompaction(level0_runs=2, fanout=10, base_size=100)
        runs = [
            _run(np.arange(50), level=0),
            _run(np.arange(50, 100), level=0),
            _run(np.arange(1_000), level=1),
        ]
        assert policy.select(runs) == (0, 3, 1)

    def test_leveled_cascades_oversized_level(self):
        policy = LeveledCompaction(level0_runs=4, fanout=10, base_size=10)
        runs = [_run(np.arange(5_000), level=1)]
        start, stop, new_level = policy.select(runs)
        assert (start, stop, new_level) == (0, 1, 2)


# -- the store -----------------------------------------------------------------

@pytest.fixture(params=["size_tiered", "leveled"])
def policy(request):
    return request.param


class TestLearnedLSMStore:
    def test_bulk_load_then_read(self, policy):
        keys = np.arange(0, 30_000, 3, dtype=np.int64)
        store = LearnedLSMStore(keys, compaction=policy)
        assert store.num_runs == 1
        assert store.lookup(300) == 300
        assert store.lookup(301) is None
        np.testing.assert_array_equal(
            store.range_query(10, 20), [12, 15, 18]
        )
        assert len(store) == keys.size

    def test_values_roundtrip(self, policy):
        store = LearnedLSMStore(
            memtable_capacity=100, compaction=policy
        )
        rng = np.random.default_rng(5)
        keys = rng.choice(10**6, 1_000, replace=False)
        vals = rng.integers(0, 10**9, 1_000)
        store.insert_batch(keys, vals)
        values, found = store.lookup_batch(keys)
        assert found.all()
        np.testing.assert_array_equal(values, vals)

    def test_seal_fires_at_capacity(self, policy):
        store = LearnedLSMStore(memtable_capacity=64, compaction=policy)
        for k in range(200):
            store.insert(k)
        assert store.write_stats.seals >= 2
        assert len(store.memtable) < 64
        assert store.contains(0) and store.contains(199)

    def test_delete_shadows_sealed_key(self, policy):
        store = LearnedLSMStore(
            np.arange(1_000, dtype=np.int64),
            memtable_capacity=10**9,
            compaction=policy,
        )
        store.delete(500)
        assert not store.contains(500)
        assert store.lookup(500) is None
        assert 500 not in store.range_query(490, 510)
        assert len(store) == 999

    def test_tombstone_resurrection(self, policy):
        store = LearnedLSMStore(
            np.arange(100, dtype=np.int64),
            memtable_capacity=4,
            compaction=policy,
        )
        store.delete(50)
        store.flush()
        assert not store.contains(50)
        store.insert(50, 5050)
        store.flush()
        assert store.contains(50)
        assert store.lookup(50) == 5050

    def test_full_compaction_garbage_collects(self, policy):
        store = LearnedLSMStore(memtable_capacity=32, compaction=policy)
        store.insert_batch(np.arange(500, dtype=np.int64))
        for k in range(0, 500, 2):
            store.delete(k)
        store.compact()
        assert store.num_runs == 1
        assert store.runs[0].num_tombstones == 0
        assert len(store.runs[0]) == 250
        np.testing.assert_array_equal(
            store.runs[0].keys, np.arange(1, 500, 2)
        )

    def test_bloom_short_circuits_negative_probes(self):
        """On a many-run store, absent-key reads mostly skip the RMIs."""
        rng = np.random.default_rng(9)
        store = LearnedLSMStore(
            memtable_capacity=2_000,
            compaction=SizeTieredCompaction(min_runs=32),  # keep runs
        )
        for _ in range(10):
            store.insert_batch(rng.integers(0, 10**9, 2_000))
        assert store.num_runs == 10
        absent = rng.integers(2 * 10**9, 3 * 10**9, 5_000)
        store.read_stats.reset()
        _, found = store.lookup_batch(absent)
        assert not found.any()
        stats = store.read_stats
        assert stats.bloom_rejects + stats.probe_misses == 10 * 5_000
        assert stats.negative_probes_eliminated >= 0.8

    def test_read_short_circuits_on_newest_hit(self, policy):
        store = LearnedLSMStore(
            memtable_capacity=100,
            compaction=SizeTieredCompaction(min_runs=100),
        )
        store.insert_batch(np.arange(100, dtype=np.int64))   # older run
        store.insert_batch(np.arange(100, dtype=np.int64))   # newer run
        assert store.num_runs == 2
        store.read_stats.reset()
        _, found = store.lookup_batch(np.arange(100, dtype=np.int64))
        assert found.all()
        # Every query resolved in the newest run: one probe each.
        assert store.read_stats.run_probes == 100

    def test_write_amplification_metered(self, policy):
        store = LearnedLSMStore(memtable_capacity=256, compaction=policy)
        rng = np.random.default_rng(3)
        for _ in range(40):
            store.insert_batch(rng.integers(0, 10**8, 200))
        wa = store.write_stats.write_amplification
        assert wa >= 1.0
        assert wa < 30.0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            LearnedLSMStore(compaction="lazy")

    def test_empty_store(self, policy):
        store = LearnedLSMStore(compaction=policy)
        assert len(store) == 0
        assert store.lookup(5) is None
        values, found = store.lookup_batch([1, 2, 3])
        assert not found.any()
        assert store.range_query(0, 10).size == 0
        result = store.range_query_batch([0], [10])
        assert len(result) == 1 and result.total == 0


# -- the multi-source merge helper ---------------------------------------------

def _rsr(values, offsets):
    return RangeScanResult(
        values=np.asarray(values, dtype=np.int64),
        offsets=np.asarray(offsets, dtype=np.int64),
    )


class TestMergeScanResults:
    def test_interleaves_sorted(self):
        a = _rsr([1, 5], [0, 2])
        b = _rsr([2, 9], [0, 2])
        merged = merge_scan_results([a, b])
        np.testing.assert_array_equal(merged[0], [1, 2, 5, 9])

    def test_dedup_keeps_newest_source(self):
        a = _rsr([5], [0, 1])
        b = _rsr([5], [0, 1])
        merged = merge_scan_results([a, b])
        np.testing.assert_array_equal(merged[0], [5])

    def test_drop_mask_shadows_older_sources(self):
        newest = _rsr([5], [0, 1])
        oldest = _rsr([5, 6], [0, 2])
        merged = merge_scan_results(
            [newest, oldest],
            drop_masks=[np.array([True]), None],
        )
        np.testing.assert_array_equal(merged[0], [6])

    def test_per_range_independence(self):
        a = _rsr([1, 1], [0, 1, 2])   # key 1 in both ranges
        b = _rsr([1], [0, 0, 1])      # key 1 only in range 1
        merged = merge_scan_results([a, b])
        np.testing.assert_array_equal(merged[0], [1])
        np.testing.assert_array_equal(merged[1], [1])

    def test_mismatched_ranges_rejected(self):
        with pytest.raises(ValueError):
            merge_scan_results([_rsr([], [0]), _rsr([], [0, 0])])

    def test_empty_sources(self):
        merged = merge_scan_results([])
        assert len(merged) == 0


# -- vectorized bloom batch path ----------------------------------------------

class TestBloomBatchEquivalence:
    def test_add_batch_bit_exact(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(-(10**12), 10**12, 3_000)
        scalar = BloomFilter.for_capacity(3_000, 0.01)
        batch = BloomFilter.for_capacity(3_000, 0.01)
        for k in keys:
            scalar.add(int(k))
        batch.add_batch(keys)
        np.testing.assert_array_equal(scalar._bits, batch._bits)
        assert scalar.count == batch.count

    def test_contains_batch_matches_scalar(self):
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 10**9, 2_000)
        bloom = BloomFilter.for_capacity(2_000, 0.02)
        bloom.add_batch(keys)
        probes = np.concatenate(
            [keys[:500], rng.integers(0, 10**9, 2_000)]
        )
        expected = np.array([int(p) in bloom for p in probes])
        np.testing.assert_array_equal(
            bloom.contains_batch(probes), expected
        )
