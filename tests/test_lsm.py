"""Unit tests for the learned LSM storage engine (Appendix D.1)."""

import numpy as np
import pytest

from repro.bloom import BloomFilter
from repro.lsm import (
    LearnedBloomGuard,
    LearnedLSMStore,
    LeveledCompaction,
    Memtable,
    SizeTieredCompaction,
    SortedRun,
    learned_bloom_factory,
    merge_runs,
)
from repro.range_scan import RangeScanResult, merge_scan_results


# -- memtable ------------------------------------------------------------------

class TestMemtable:
    def test_put_get_delete(self):
        mem = Memtable()
        mem.put(5, 50)
        assert mem.get(5) == 50
        assert mem.has_put(5)
        mem.put(5, 51)
        assert mem.get(5) == 51
        assert len(mem) == 1
        mem.delete(5)
        assert not mem.has_put(5)
        assert mem.is_tombstone(5)
        assert len(mem) == 1  # the tombstone is an entry

    def test_put_overrides_tombstone(self):
        mem = Memtable()
        mem.delete(9)
        mem.put(9, 90)
        assert not mem.is_tombstone(9)
        assert mem.get(9) == 90

    def test_put_batch_last_wins(self):
        mem = Memtable()
        mem.put_batch([3, 1, 3], [30, 10, 31])
        assert mem.get(3) == 31
        np.testing.assert_array_equal(mem.put_keys(), [1, 3])
        np.testing.assert_array_equal(mem.put_values(), [10, 31])

    def test_sorted_views_track_mutations(self):
        mem = Memtable()
        mem.put_batch([5, 2, 9], [1, 2, 3])
        np.testing.assert_array_equal(mem.put_keys(), [2, 5, 9])
        mem.delete(5)
        np.testing.assert_array_equal(mem.put_keys(), [2, 9])
        np.testing.assert_array_equal(mem.tombstone_keys(), [5])

    def test_snapshot_interleaves_tombstones(self):
        mem = Memtable()
        mem.put_batch([2, 8], [20, 80])
        mem.delete(5)
        keys, values, dead = mem.snapshot()
        np.testing.assert_array_equal(keys, [2, 5, 8])
        np.testing.assert_array_equal(dead, [False, True, False])
        np.testing.assert_array_equal(values[~dead], [20, 80])

    def test_remove_put_primitive(self):
        mem = Memtable()
        mem.put(4, 40)
        assert mem.remove_put(4)
        assert not mem.remove_put(4)
        assert not mem.is_tombstone(4)  # remove_put never tombstones


# -- sorted runs ---------------------------------------------------------------

class TestSortedRun:
    def test_seal_roundtrip(self):
        """A sealed memtable answers exactly what was buffered."""
        rng = np.random.default_rng(1)
        mem = Memtable()
        keys = rng.choice(10_000, 2_000, replace=False)
        vals = rng.integers(0, 10**6, 2_000)
        mem.put_batch(keys, vals)
        for k in keys[:100]:
            mem.delete(int(k))
        run = SortedRun(*mem.snapshot())
        hit, dead, got = run.probe_batch(np.sort(keys))
        assert hit.all()
        assert int(dead.sum()) == len(set(keys[:100].tolist()))
        lookup = dict(zip(keys.tolist(), vals.tolist()))
        order = np.argsort(keys)
        expected = np.array([lookup[int(k)] for k in np.sort(keys)])
        live = ~dead
        np.testing.assert_array_equal(got[live], expected[live])

    def test_rejects_unsorted_or_duplicate(self):
        with pytest.raises(ValueError):
            SortedRun(np.array([3, 1]))
        with pytest.raises(ValueError):
            SortedRun(np.array([1, 1]))

    def test_bloom_has_no_false_negatives(self):
        keys = np.arange(0, 50_000, 7, dtype=np.int64)
        run = SortedRun(keys)
        assert run.bloom_contains_batch(keys).all()

    def test_bloom_rejects_most_absent(self):
        keys = np.arange(0, 50_000, 7, dtype=np.int64)
        run = SortedRun(keys, bloom_fpr=0.01)
        absent = np.arange(1, 50_000, 7, dtype=np.int64)
        assert run.bloom_contains_batch(absent).mean() < 0.05

    def test_range_scan_flags_tombstones(self):
        keys = np.arange(10, dtype=np.int64)
        dead = np.zeros(10, dtype=bool)
        dead[3] = dead[7] = True
        run = SortedRun(keys, tombstones=dead)
        result, flags = run.range_scan_batch([0.0, 6.0], [5.0, 20.0])
        np.testing.assert_array_equal(result[0], [0, 1, 2, 3, 4, 5])
        np.testing.assert_array_equal(
            flags[:6], [False, False, False, True, False, False]
        )


# -- compaction ----------------------------------------------------------------

def _run(keys, dead=(), level=0, seq=0):
    keys = np.asarray(keys, dtype=np.int64)
    mask = np.isin(keys, np.asarray(list(dead), dtype=np.int64))
    return SortedRun(keys, tombstones=mask, level=level, sequence=seq)


class TestMergeRuns:
    def test_newest_wins(self):
        new = SortedRun(np.array([1, 5]), np.array([100, 500]))
        old = SortedRun(np.array([1, 9]), np.array([-1, 900]))
        merged = merge_runs([new, old], drop_tombstones=False)
        np.testing.assert_array_equal(merged.keys, [1, 5, 9])
        np.testing.assert_array_equal(merged.values, [100, 500, 900])

    def test_tombstone_shadows_older_key(self):
        new = _run([5], dead=[5])
        old = _run([1, 5])
        kept = merge_runs([new, old], drop_tombstones=False)
        np.testing.assert_array_equal(kept.keys, [1, 5])
        assert kept.tombstones[1]  # marker survives for deeper runs
        gc = merge_runs([new, old], drop_tombstones=True)
        np.testing.assert_array_equal(gc.keys, [1])
        assert gc.num_tombstones == 0

    def test_put_resurrects_tombstoned_key(self):
        newest = _run([5])           # re-insert
        middle = _run([5], dead=[5])  # older delete
        oldest = _run([5, 6])
        merged = merge_runs([newest, middle, oldest], drop_tombstones=True)
        np.testing.assert_array_equal(merged.keys, [5, 6])


class TestPolicies:
    def test_size_tiered_waits_for_min_runs(self):
        policy = SizeTieredCompaction(min_runs=4)
        runs = [_run(np.arange(100)) for _ in range(3)]
        assert policy.select(runs) is None
        runs.insert(0, _run(np.arange(100)))
        assert policy.select(runs) == (0, 4, 0)

    def test_size_tiered_ignores_mixed_buckets(self):
        policy = SizeTieredCompaction(min_runs=2)
        runs = [_run(np.arange(100)), _run(np.arange(10_000))]
        assert policy.select(runs) is None

    def test_size_tiered_backstop_bounds_run_count(self):
        """Alternating buckets can never form a streak; the max_runs
        backstop must still merge the oldest window (regression for a
        degenerate workload that stranded hundreds of runs)."""
        policy = SizeTieredCompaction(min_runs=2, max_runs=4)
        runs = [
            _run(np.arange(100 if i % 2 else 10_000)) for i in range(4)
        ]
        assert policy.select(runs) == (2, 4, 0)
        # And end-to-end: a confined keyspace with heavy deletes keeps
        # the run count bounded by the backstop.
        rng = np.random.default_rng(6)
        store = LearnedLSMStore(
            memtable_capacity=7,
            compaction=SizeTieredCompaction(min_runs=2, max_runs=8),
        )
        for _ in range(1_500):
            if rng.random() < 0.5:
                store.insert(int(rng.integers(0, 500)))
            else:
                store.delete(int(rng.integers(0, 500)))
        store.wait_for_compaction()
        assert store.num_runs < 8

    def test_leveled_folds_l0_into_l1(self):
        policy = LeveledCompaction(level0_runs=2, fanout=10, base_size=100)
        runs = [
            _run(np.arange(50), level=0),
            _run(np.arange(50, 100), level=0),
            _run(np.arange(1_000), level=1),
        ]
        assert policy.select(runs) == (0, 3, 1)

    def test_leveled_cascades_oversized_level(self):
        policy = LeveledCompaction(level0_runs=4, fanout=10, base_size=10)
        runs = [_run(np.arange(5_000), level=1)]
        start, stop, new_level = policy.select(runs)
        assert (start, stop, new_level) == (0, 1, 2)


# -- the store -----------------------------------------------------------------

@pytest.fixture(params=["size_tiered", "leveled"])
def policy(request):
    return request.param


class TestLearnedLSMStore:
    def test_bulk_load_then_read(self, policy):
        keys = np.arange(0, 30_000, 3, dtype=np.int64)
        store = LearnedLSMStore(keys, compaction=policy)
        assert store.num_runs == 1
        assert store.lookup(300) == 300
        assert store.lookup(301) is None
        np.testing.assert_array_equal(
            store.range_query(10, 20), [12, 15, 18]
        )
        assert len(store) == keys.size

    def test_values_roundtrip(self, policy):
        store = LearnedLSMStore(
            memtable_capacity=100, compaction=policy
        )
        rng = np.random.default_rng(5)
        keys = rng.choice(10**6, 1_000, replace=False)
        vals = rng.integers(0, 10**9, 1_000)
        store.insert_batch(keys, vals)
        values, found = store.lookup_batch(keys)
        assert found.all()
        np.testing.assert_array_equal(values, vals)

    def test_seal_fires_at_capacity(self, policy):
        store = LearnedLSMStore(memtable_capacity=64, compaction=policy)
        for k in range(200):
            store.insert(k)
        assert store.write_stats.seals >= 2
        assert len(store.memtable) < 64
        assert store.contains(0) and store.contains(199)

    def test_delete_shadows_sealed_key(self, policy):
        store = LearnedLSMStore(
            np.arange(1_000, dtype=np.int64),
            memtable_capacity=10**9,
            compaction=policy,
        )
        store.delete(500)
        assert not store.contains(500)
        assert store.lookup(500) is None
        assert 500 not in store.range_query(490, 510)
        assert len(store) == 999

    def test_tombstone_resurrection(self, policy):
        store = LearnedLSMStore(
            np.arange(100, dtype=np.int64),
            memtable_capacity=4,
            compaction=policy,
        )
        store.delete(50)
        store.flush()
        assert not store.contains(50)
        store.insert(50, 5050)
        store.flush()
        assert store.contains(50)
        assert store.lookup(50) == 5050

    def test_full_compaction_garbage_collects(self, policy):
        store = LearnedLSMStore(memtable_capacity=32, compaction=policy)
        store.insert_batch(np.arange(500, dtype=np.int64))
        for k in range(0, 500, 2):
            store.delete(k)
        store.compact()
        assert store.num_runs == 1
        assert store.runs[0].num_tombstones == 0
        assert len(store.runs[0]) == 250
        np.testing.assert_array_equal(
            store.runs[0].keys, np.arange(1, 500, 2)
        )

    def test_bloom_short_circuits_negative_probes(self):
        """On a many-run store, absent-key reads mostly skip the RMIs."""
        rng = np.random.default_rng(9)
        store = LearnedLSMStore(
            memtable_capacity=2_000,
            compaction=SizeTieredCompaction(min_runs=32),  # keep runs
        )
        for _ in range(10):
            store.insert_batch(rng.integers(0, 10**9, 2_000))
        assert store.num_runs == 10
        absent = rng.integers(2 * 10**9, 3 * 10**9, 5_000)
        store.read_stats.reset()
        _, found = store.lookup_batch(absent)
        assert not found.any()
        stats = store.read_stats
        assert stats.bloom_rejects + stats.probe_misses == 10 * 5_000
        assert stats.negative_probes_eliminated >= 0.8

    def test_read_short_circuits_on_newest_hit(self, policy):
        store = LearnedLSMStore(
            memtable_capacity=100,
            compaction=SizeTieredCompaction(min_runs=100),
        )
        store.insert_batch(np.arange(100, dtype=np.int64))   # older run
        store.insert_batch(np.arange(100, dtype=np.int64))   # newer run
        assert store.num_runs == 2
        store.read_stats.reset()
        _, found = store.lookup_batch(np.arange(100, dtype=np.int64))
        assert found.all()
        # Every query resolved in the newest run: one probe each.
        assert store.read_stats.run_probes == 100

    def test_write_amplification_metered(self, policy):
        store = LearnedLSMStore(memtable_capacity=256, compaction=policy)
        rng = np.random.default_rng(3)
        for _ in range(40):
            store.insert_batch(rng.integers(0, 10**8, 200))
        store.wait_for_compaction()
        wa = store.write_stats.write_amplification
        assert wa >= 1.0
        assert wa < 30.0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            LearnedLSMStore(compaction="lazy")

    def test_empty_store(self, policy):
        store = LearnedLSMStore(compaction=policy)
        assert len(store) == 0
        assert store.lookup(5) is None
        values, found = store.lookup_batch([1, 2, 3])
        assert not found.any()
        assert store.range_query(0, 10).size == 0
        result = store.range_query_batch([0], [10])
        assert len(result) == 1 and result.total == 0


# -- the multi-source merge helper ---------------------------------------------

def _rsr(values, offsets):
    return RangeScanResult(
        values=np.asarray(values, dtype=np.int64),
        offsets=np.asarray(offsets, dtype=np.int64),
    )


class TestMergeScanResults:
    def test_interleaves_sorted(self):
        a = _rsr([1, 5], [0, 2])
        b = _rsr([2, 9], [0, 2])
        merged = merge_scan_results([a, b])
        np.testing.assert_array_equal(merged[0], [1, 2, 5, 9])

    def test_dedup_keeps_newest_source(self):
        a = _rsr([5], [0, 1])
        b = _rsr([5], [0, 1])
        merged = merge_scan_results([a, b])
        np.testing.assert_array_equal(merged[0], [5])

    def test_drop_mask_shadows_older_sources(self):
        newest = _rsr([5], [0, 1])
        oldest = _rsr([5, 6], [0, 2])
        merged = merge_scan_results(
            [newest, oldest],
            drop_masks=[np.array([True]), None],
        )
        np.testing.assert_array_equal(merged[0], [6])

    def test_per_range_independence(self):
        a = _rsr([1, 1], [0, 1, 2])   # key 1 in both ranges
        b = _rsr([1], [0, 0, 1])      # key 1 only in range 1
        merged = merge_scan_results([a, b])
        np.testing.assert_array_equal(merged[0], [1])
        np.testing.assert_array_equal(merged[1], [1])

    def test_mismatched_ranges_rejected(self):
        with pytest.raises(ValueError):
            merge_scan_results([_rsr([], [0]), _rsr([], [0, 0])])

    def test_empty_sources(self):
        merged = merge_scan_results([])
        assert len(merged) == 0


# -- vectorized bloom batch path ----------------------------------------------

class TestBloomBatchEquivalence:
    def test_add_batch_bit_exact(self):
        rng = np.random.default_rng(2)
        keys = rng.integers(-(10**12), 10**12, 3_000)
        scalar = BloomFilter.for_capacity(3_000, 0.01)
        batch = BloomFilter.for_capacity(3_000, 0.01)
        for k in keys:
            scalar.add(int(k))
        batch.add_batch(keys)
        np.testing.assert_array_equal(scalar._bits, batch._bits)
        assert scalar.count == batch.count

    def test_contains_batch_matches_scalar(self):
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 10**9, 2_000)
        bloom = BloomFilter.for_capacity(2_000, 0.02)
        bloom.add_batch(keys)
        probes = np.concatenate(
            [keys[:500], rng.integers(0, 10**9, 2_000)]
        )
        expected = np.array([int(p) in bloom for p in probes])
        np.testing.assert_array_equal(
            bloom.contains_batch(probes), expected
        )


# -- range_items_batch (ISSUE 5 satellite) -------------------------------------

class TestRangeItemsBatch:
    """(key, value) range reads: the merge_scan_results payload gather."""

    def build(self):
        rng = np.random.default_rng(0x17EB5)
        keys = np.unique(rng.integers(0, 20_000, 1_500)).astype(np.int64)
        store = LearnedLSMStore(
            keys, values=keys * 3, memtable_capacity=120
        )
        truth = {int(k): int(k) * 3 for k in keys}
        # Overwrites across runs (newest wins), deletes, and fresh keys
        # still buffered in the memtable.
        for k in keys[::5].tolist():
            store.insert(k, k + 7)
            truth[k] = k + 7
        for k in keys[1::9].tolist():
            store.delete(k)
            truth.pop(k, None)
        for k in range(20_001, 20_040):
            store.insert(k, k * 2)
            truth[k] = k * 2
        return store, truth

    def test_items_match_oracle(self):
        store, truth = self.build()
        rng = np.random.default_rng(3)
        lows = rng.integers(-10, 20_050, 60)
        highs = lows + rng.integers(-20, 500, 60)
        result, values = store.range_items_batch(lows, highs)
        keys_only = store.range_query_batch(lows, highs)
        np.testing.assert_array_equal(result.offsets, keys_only.offsets)
        np.testing.assert_array_equal(result.values, keys_only.values)
        assert values.size == result.total
        for j, key in enumerate(np.asarray(result.values).tolist()):
            assert values[j] == truth[key], (j, key)

    def test_items_empty_batch(self):
        store, _ = self.build()
        result, values = store.range_items_batch([], [])
        assert len(result) == 0
        assert values.size == 0

    def test_items_inverted_and_empty_ranges(self):
        store, _ = self.build()
        result, values = store.range_items_batch([500, 100], [400, 100 - 1])
        assert result.total == 0
        assert values.size == 0

    def test_run_level_value_gather(self):
        keys = np.array([1, 3, 5, 9], dtype=np.int64)
        run = SortedRun(keys, values=keys * 10)
        result, flags, values = run.range_scan_batch(
            np.array([0, 4]), np.array([5, 9]), with_values=True
        )
        np.testing.assert_array_equal(result.values, [1, 3, 5, 5, 9])
        np.testing.assert_array_equal(values, [10, 30, 50, 50, 90])
        assert not flags.any()

    def test_merge_scan_results_payloads(self):
        newer = _rsr([5, 7], [0, 2])
        older = _rsr([5, 8], [0, 2])
        merged, payloads = merge_scan_results(
            [newer, older],
            payloads=[np.array([50, 70]), np.array([-5, 80])],
        )
        np.testing.assert_array_equal(merged.values, [5, 7, 8])
        np.testing.assert_array_equal(payloads, [50, 70, 80])

    def test_merge_scan_results_payload_length_mismatch(self):
        source = _rsr([5, 7], [0, 2])
        with pytest.raises(ValueError):
            merge_scan_results([source], payloads=[np.array([1])])


# -- learned bloom guard (ISSUE 5 satellite) -----------------------------------

class _HashScoreModel:
    """Deterministic stand-in classifier: crc32-derived scores in [0, 1).

    Scores are arbitrary but stable, so roughly half the keys fall
    below any tuned tau — exercising the overflow filter — while the
    zero-false-negative construction must still answer every stored
    key True.
    """

    def predict_proba_one(self, key: str) -> float:
        import zlib

        return (zlib.crc32(key.encode()) % 4096) / 4096.0

    def predict_proba(self, keys):
        return np.array([self.predict_proba_one(k) for k in keys])

    def size_bytes(self) -> int:
        return 64


class TestLearnedBloomGuard:
    VALIDATION = [f"v:{i}" for i in range(512)]

    def factory(self):
        return learned_bloom_factory(_HashScoreModel, self.VALIDATION)

    def test_guard_has_no_false_negatives(self):
        run = SortedRun(
            np.arange(0, 2_000, 3, dtype=np.int64),
            bloom_factory=self.factory(),
        )
        assert isinstance(run.bloom, LearnedBloomGuard)
        assert run.bloom.size_bytes() > 0
        hits = run.bloom_contains_batch(run.keys)
        assert hits.all(), "learned bloom must never reject a stored key"
        for k in run.keys[:50].tolist():
            assert k in run.bloom

    def test_empty_run_guard(self):
        guard = self.factory()(0, 0.01)
        assert 5 not in guard
        assert not guard.contains_batch(np.array([1, 2])).any()
        assert guard.size_bytes() == 0

    def test_learned_guarded_store_oracle_identical(self):
        """A learned-bloom-guarded store answers exactly like the
        default-bloom store and the dict oracle (guards can only skip
        probes, never change answers — zero false negatives)."""
        rng = np.random.default_rng(0xB100)
        base = np.unique(rng.integers(0, 30_000, 2_000)).astype(np.int64)
        learned = LearnedLSMStore(
            base, memtable_capacity=250, bloom_factory=self.factory()
        )
        standard = LearnedLSMStore(base, memtable_capacity=250)
        truth = {int(k): int(k) for k in base}
        for _ in range(1_200):
            key = int(rng.integers(-50, 30_050))
            op = rng.random()
            if op < 0.5:
                value = int(rng.integers(0, 10**9))
                learned.insert(key, value)
                standard.insert(key, value)
                truth[key] = value
            elif op < 0.85:
                learned.delete(key)
                standard.delete(key)
                truth.pop(key, None)
            else:
                learned.flush()
                standard.flush()
        assert learned.num_runs > 1, "test must exercise multi-run reads"
        probes = rng.integers(-100, 30_100, 600)
        values, found = learned.lookup_batch(probes)
        std_values, std_found = standard.lookup_batch(probes)
        np.testing.assert_array_equal(found, std_found)
        np.testing.assert_array_equal(values, std_values)
        np.testing.assert_array_equal(
            found, np.array([int(q) in truth for q in probes])
        )
        hits = np.nonzero(found)[0]
        np.testing.assert_array_equal(
            values[hits],
            np.array([truth[int(probes[i])] for i in hits], dtype=np.int64),
        )
        for q in probes[:30].tolist():
            assert learned.lookup(q) == truth.get(q)

    def test_guard_filters_some_negatives(self):
        rng = np.random.default_rng(0xB101)
        store = LearnedLSMStore(
            memtable_capacity=10**15,
            compaction=SizeTieredCompaction(min_runs=100),
            bloom_factory=self.factory(),
        )
        for _ in range(4):
            store.insert_batch(rng.integers(0, 10**6, 2_000))
            store.flush()
        absent = rng.integers(2 * 10**6, 3 * 10**6, 2_000)
        store.read_stats.reset()
        store.lookup_batch(absent)
        assert store.read_stats.bloom_rejects > 0


class TestMemtableEndpointExactness:
    """Regression: memtable-resident data must resolve float range
    endpoints through the query core exactly like run-resident data
    (a raw searchsorted promoted the int64 snapshot to float64, so
    2^53+1 fell inside the range [2^53, 2^53])."""

    def test_buffered_and_sealed_answers_match(self):
        key = 2**53 + 1
        store = LearnedLSMStore(memtable_capacity=10**9)
        store.insert(key)
        lows, highs = [float(2**53)], [float(2**53)]
        buffered = store.range_query_batch(lows, highs)
        assert list(buffered[0]) == []
        assert list(store.range_query_batch([key], [key])[0]) == [key]
        items, _values = store.range_items_batch(lows, highs)
        assert items.total == 0
        store.flush()
        sealed = store.range_query_batch(lows, highs)
        assert list(sealed[0]) == list(buffered[0])


# -- compaction no-progress guard (ISSUE 7) ------------------------------------

class _BoundedSelects:
    """Mixin: fail the test (instead of hanging it) if the store
    consults ``select`` more than ``limit`` times — the signature an
    unguarded compaction loop leaves behind."""

    limit = 200

    def __init__(self):
        self.calls = 0

    def _metered(self):
        self.calls += 1
        assert self.calls <= self.limit, (
            "compaction loop failed to terminate: policy.select was "
            f"consulted {self.calls} times for one seal"
        )

    def configure(self, memtable_capacity):
        pass


class _SelfWindowPolicy(_BoundedSelects, SizeTieredCompaction):
    """Always re-selects the newest run onto its own level — a pure
    no-op window that re-runs ``policy.select`` without ever changing
    the layout."""

    def __init__(self):
        _BoundedSelects.__init__(self)

    def select(self, runs):
        self._metered()
        if not runs:
            return None
        return 0, 1, runs[0].level


class _LevelOscillator(_BoundedSelects, SizeTieredCompaction):
    """Bounces the newest run between levels 0 and 1 forever: each
    selection is individually 'productive' (the level changes), but
    the second bounce reproduces an earlier (layout, selection)
    signature exactly — only the signature guard can stop it."""

    def __init__(self):
        _BoundedSelects.__init__(self)

    def select(self, runs):
        self._metered()
        if not runs:
            return None
        return 0, 1, 1 - runs[0].level


class TestCompactionTermination:
    def test_self_window_policy_terminates(self):
        policy = _SelfWindowPolicy()
        store = LearnedLSMStore(
            memtable_capacity=4, compaction=policy, background=False
        )
        store.insert_batch(np.arange(8, dtype=np.int64))
        assert store.num_runs >= 1
        assert policy.calls <= policy.limit
        # Correctness untouched by the rejected windows:
        _, found = store.lookup_batch(np.arange(8, dtype=np.int64))
        assert found.all()

    def test_oscillating_policy_terminates(self):
        policy = _LevelOscillator()
        store = LearnedLSMStore(
            memtable_capacity=4, compaction=policy, background=False
        )
        store.insert_batch(np.arange(8, dtype=np.int64))
        assert policy.calls <= policy.limit
        _, found = store.lookup_batch(np.arange(8, dtype=np.int64))
        assert found.all()

    def test_self_window_with_droppable_tombstones_is_progress(self):
        """The single-run exemption: when the window is the whole list
        and carries tombstones, re-merging it GCs them — that is real
        progress, must happen exactly once, and must not retrigger."""
        policy = _SelfWindowPolicy()
        store = LearnedLSMStore(
            memtable_capacity=4, compaction=policy, background=False
        )
        keys = np.arange(4, dtype=np.int64)
        dead = np.array([True, True, False, False])
        store.runs = [SortedRun(keys, keys * 2, dead)]
        store._compact(None)
        assert policy.calls <= policy.limit
        assert store.num_runs == 1
        assert store.runs[0].num_tombstones == 0  # the GC merge ran
        assert store.write_stats.compactions == 1  # ...exactly once
        _, found = store.lookup_batch(keys)
        assert not found[:2].any() and found[2:].all()

    @staticmethod
    def _bad_policy():
        class Bad(_BoundedSelects, SizeTieredCompaction):
            def __init__(self):
                _BoundedSelects.__init__(self)

            def select(self, runs):
                self._metered()
                return 0, len(runs) + 1, 0

        return Bad()

    def test_invalid_selection_rejected(self):
        store = LearnedLSMStore(
            memtable_capacity=4,
            compaction=self._bad_policy(),
            background=False,
        )
        with pytest.raises(ValueError, match="invalid window"):
            store.insert_batch(np.arange(8, dtype=np.int64))

    def test_invalid_selection_rejected_background(self):
        """On the worker thread the same guard trips, sticks, and
        re-raises at the synchronization point instead of vanishing
        into a dead daemon."""
        store = LearnedLSMStore(
            memtable_capacity=4,
            compaction=self._bad_policy(),
            background=True,
        )
        store.insert_batch(np.arange(8, dtype=np.int64))
        with pytest.raises(ValueError, match="invalid window"):
            store.wait_for_compaction()
