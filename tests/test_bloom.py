"""Unit tests for the standard Bloom filter."""

import numpy as np
import pytest

from repro.bloom import BloomFilter, optimal_bits, optimal_hash_count


class TestSizing:
    def test_optimal_bits_formula(self):
        # m = -n ln p / ln(2)^2; for n=1000, p=0.01 -> ~9585 bits
        assert optimal_bits(1000, 0.01) == pytest.approx(9585, rel=0.01)

    def test_paper_scale_example(self):
        """Section 5: one billion records need ~1.76GB, and '[f]or a FPR
        of 0.01% we would require ~2.23 Gigabytes'."""
        gb_01bp = optimal_bits(10**9, 0.0001) / 8 / 1000**3
        assert gb_01bp == pytest.approx(2.23, rel=0.1)
        gb_10bp = optimal_bits(10**9, 0.001) / 8 / 1000**3
        assert gb_10bp == pytest.approx(1.76, rel=0.1)

    def test_optimal_hash_count(self):
        m = optimal_bits(1000, 0.01)
        assert optimal_hash_count(m, 1000) == 7

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            optimal_bits(-1, 0.01)
        with pytest.raises(ValueError):
            optimal_bits(10, 1.5)
        with pytest.raises(ValueError):
            BloomFilter(0, 1)
        with pytest.raises(ValueError):
            BloomFilter(8, 0)


class TestNoFalseNegatives:
    def test_strings(self):
        keys = [f"key-{i}" for i in range(2_000)]
        bloom = BloomFilter.for_capacity(len(keys), 0.01)
        bloom.add_batch(keys)
        assert all(k in bloom for k in keys)

    def test_integers(self):
        keys = list(range(0, 20_000, 7))
        bloom = BloomFilter.for_capacity(len(keys), 0.05)
        bloom.add_batch(keys)
        assert all(k in bloom for k in keys)


class TestFalsePositiveRate:
    def test_close_to_target(self):
        keys = [f"key-{i}" for i in range(5_000)]
        non_keys = [f"other-{i}" for i in range(30_000)]
        for target in (0.01, 0.05):
            bloom = BloomFilter.for_capacity(len(keys), target)
            bloom.add_batch(keys)
            measured = bloom.measured_fpr(non_keys)
            assert measured == pytest.approx(target, rel=0.6)

    def test_expected_fpr_tracks_occupancy(self):
        bloom = BloomFilter.for_capacity(1000, 0.01)
        assert bloom.expected_fpr() == 0.0
        bloom.add_batch([f"k{i}" for i in range(1000)])
        assert bloom.expected_fpr() == pytest.approx(0.01, rel=0.3)

    def test_overfilled_filter_degrades(self):
        bloom = BloomFilter.for_capacity(100, 0.01)
        bloom.add_batch([f"k{i}" for i in range(2000)])
        assert bloom.measured_fpr([f"x{i}" for i in range(2000)]) > 0.2


class TestInternals:
    def test_size_bytes(self):
        bloom = BloomFilter(8000, 3)
        assert bloom.size_bytes() == 1000

    def test_fill_ratio_monotone(self):
        bloom = BloomFilter(4096, 3)
        assert bloom.fill_ratio() == 0.0
        bloom.add("a")
        ratio_one = bloom.fill_ratio()
        bloom.add_batch([f"k{i}" for i in range(100)])
        assert bloom.fill_ratio() > ratio_one

    def test_measured_fpr_empty_nonkeys(self):
        bloom = BloomFilter(64, 2)
        assert bloom.measured_fpr([]) == 0.0

    def test_mixed_key_types(self):
        bloom = BloomFilter.for_capacity(100, 0.01)
        bloom.add("string-key")
        bloom.add(12345)
        assert "string-key" in bloom
        assert 12345 in bloom
