"""Unit tests for the learned string index (Sections 3.5, 3.7.2)."""

import bisect

import numpy as np
import pytest

from repro.core import StringRMI
from repro.data import string_dataset, web_paths


def probes_for(keys, rng, count=150):
    present = [keys[i] for i in rng.integers(0, len(keys), count)]
    absent = [k + "~" for k in present[:40]]
    absent += ["", "\x7f\x7f", keys[0][:-1], keys[-1] + "z"]
    return present + absent


class TestConstruction:
    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            StringRMI(["b", "a"])

    def test_rejects_bad_leaves(self):
        with pytest.raises(ValueError):
            StringRMI(["a"], num_leaves=0)

    def test_empty(self):
        index = StringRMI([], num_leaves=4)
        assert index.lookup("anything") == 0

    def test_single(self):
        index = StringRMI(["hello"], num_leaves=4)
        assert index.lookup("a") == 0
        assert index.lookup("hello") == 0
        assert index.lookup("z") == 1


class TestLookupCorrectness:
    def test_document_ids_linear_root(self, strings_small, rng):
        index = StringRMI(strings_small, num_leaves=100)
        for q in probes_for(strings_small, rng):
            assert index.lookup(q) == bisect.bisect_left(strings_small, q), q

    def test_web_paths(self, rng):
        keys = web_paths(2_000, seed=8)
        index = StringRMI(keys, num_leaves=64)
        for q in probes_for(keys, rng):
            assert index.lookup(q) == bisect.bisect_left(keys, q)

    def test_mlp_root(self, strings_small, rng):
        index = StringRMI(
            strings_small, num_leaves=100, hidden=(8,), epochs=8
        )
        for q in probes_for(strings_small, rng, count=80):
            assert index.lookup(q) == bisect.bisect_left(strings_small, q)

    @pytest.mark.parametrize(
        "strategy", ["binary", "biased_binary", "biased_quaternary"]
    )
    def test_search_strategies(self, strategy, strings_small, rng):
        index = StringRMI(
            strings_small, num_leaves=100, search_strategy=strategy
        )
        for q in probes_for(strings_small, rng, count=100):
            assert index.lookup(q) == bisect.bisect_left(strings_small, q)

    def test_hybrid_fallback(self, strings_small, rng):
        index = StringRMI(strings_small, num_leaves=50, hybrid_threshold=16)
        assert index.replaced_leaf_count > 0
        for q in probes_for(strings_small, rng):
            assert index.lookup(q) == bisect.bisect_left(strings_small, q)

    def test_contains(self, strings_small):
        index = StringRMI(strings_small, num_leaves=32)
        assert index.contains(strings_small[7])
        assert not index.contains(strings_small[7] + "x")


class TestBounds:
    def test_windows_contain_stored_keys(self, strings_small):
        index = StringRMI(strings_small, num_leaves=64)
        for i in range(0, len(strings_small), 31):
            _est, lo, hi = index.predict(strings_small[i])
            assert lo <= i < hi

    def test_range_query(self, strings_small):
        index = StringRMI(strings_small, num_leaves=64)
        lo_key = strings_small[100]
        hi_key = strings_small[200]
        expected = strings_small[100:201]
        assert index.range_query(lo_key, hi_key) == expected

    def test_range_query_empty(self, strings_small):
        index = StringRMI(strings_small, num_leaves=16)
        assert index.range_query("z", "a") == []


class TestAccounting:
    def test_hybrid_grows_size(self, strings_small):
        pure = StringRMI(strings_small, num_leaves=50)
        hybrid = StringRMI(strings_small, num_leaves=50, hybrid_threshold=16)
        assert hybrid.size_bytes() > pure.size_bytes()

    def test_mlp_root_larger_than_linear(self, strings_small):
        linear = StringRMI(strings_small, num_leaves=50)
        mlp = StringRMI(strings_small, num_leaves=50, hidden=(16,), epochs=2)
        assert mlp.size_bytes() > linear.size_bytes()

    def test_model_op_count(self, strings_small):
        index = StringRMI(strings_small, num_leaves=10, max_length=24)
        assert index.model_op_count() > 24

    def test_stats(self, strings_small, rng):
        index = StringRMI(strings_small, num_leaves=32)
        index.stats.reset()
        for q in [strings_small[i] for i in rng.integers(0, len(strings_small), 40)]:
            index.lookup(q)
        assert index.stats.lookups == 40
        assert index.stats.comparisons > 0
