"""Unit tests for the separate-chaining hash map (Appendix B)."""

import numpy as np
import pytest

from repro.core import LearnedHashFunction
from repro.hashmap import (
    RECORD_BYTES,
    SLOT_BYTES,
    ChainingHashMap,
    RandomHashFunction,
)


@pytest.fixture()
def kv(rng):
    keys = np.unique(rng.integers(0, 10**12, size=5_000))
    values = rng.integers(0, 10**9, size=keys.size)
    return keys, values


class TestBasicOperations:
    def test_roundtrip(self, kv):
        keys, values = kv
        hm = ChainingHashMap(keys.size, RandomHashFunction(keys.size, seed=1))
        hm.insert_batch(keys, values)
        assert len(hm) == keys.size
        for i in range(0, keys.size, 53):
            assert hm.get(int(keys[i])) == int(values[i])

    def test_missing_key(self, kv):
        keys, values = kv
        hm = ChainingHashMap(keys.size, RandomHashFunction(keys.size, seed=1))
        hm.insert_batch(keys, values)
        absent = int(keys.max()) + 17
        assert hm.get(absent) is None
        assert absent not in hm

    def test_overwrite(self):
        hm = ChainingHashMap(16, RandomHashFunction(16, seed=1))
        hm.insert(5, 100)
        hm.insert(5, 200)
        assert hm.get(5) == 200
        assert len(hm) == 1

    def test_overwrite_in_chain(self):
        # Force a chain by hashing everything to slot 0.
        hm = ChainingHashMap(8, lambda key: 0)
        hm.insert(1, 10)
        hm.insert(2, 20)
        hm.insert(3, 30)
        hm.insert(2, 99)
        assert hm.get(2) == 99
        assert len(hm) == 3

    def test_rejects_bad_slots(self):
        with pytest.raises(ValueError):
            ChainingHashMap(0, lambda key: 0)

    def test_mismatched_batch(self):
        hm = ChainingHashMap(4, lambda key: 0)
        with pytest.raises(ValueError):
            hm.insert_batch(np.array([1, 2]), np.array([1]))


class TestStorageAccounting:
    def test_slot_constants_match_paper(self):
        assert RECORD_BYTES == 20
        assert SLOT_BYTES == 24

    def test_empty_slot_bytes(self):
        hm = ChainingHashMap(10, lambda key: int(key) % 10)
        hm.insert(0, 1)
        hm.insert(1, 2)
        assert hm.empty_slots == 8
        assert hm.empty_slot_bytes() == 8 * SLOT_BYTES

    def test_size_includes_overflow(self):
        hm = ChainingHashMap(4, lambda key: 0)
        for k in range(4):
            hm.insert(k, k)
        assert hm.overflow_records() == 3
        assert hm.size_bytes() == 4 * SLOT_BYTES + 3 * SLOT_BYTES

    def test_chain_histogram(self):
        hm = ChainingHashMap(4, lambda key: 0)
        for k in range(3):
            hm.insert(k, k)
        histogram = hm.chain_length_histogram()
        assert histogram[3] == 1
        assert histogram[0] == 3


class TestLearnedVersusRandom:
    def test_learned_hash_wastes_fewer_slots(self, maps_small):
        """Appendix B / Figure 11: model hash reduces empty-slot waste."""
        keys = maps_small
        values = np.arange(keys.size)
        learned = ChainingHashMap(
            keys.size,
            LearnedHashFunction(keys, keys.size, stage_sizes=(1, keys.size // 10)),
        )
        learned.insert_batch(keys, values)
        random_map = ChainingHashMap(
            keys.size, RandomHashFunction(keys.size, seed=3)
        )
        random_map.insert_batch(keys, values)
        assert learned.empty_slot_bytes() < 0.5 * random_map.empty_slot_bytes()
        # and both must still round-trip correctly
        for i in range(0, keys.size, 997):
            assert learned.get(int(keys[i])) == i
            assert random_map.get(int(keys[i])) == i

    def test_probe_counting(self, kv):
        keys, values = kv
        hm = ChainingHashMap(keys.size, RandomHashFunction(keys.size, seed=1))
        hm.insert_batch(keys, values)
        before = hm.probe_count
        hm.get(int(keys[0]))
        assert hm.probe_count > before
