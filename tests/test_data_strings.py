"""Unit tests for the string document-id generators."""

import numpy as np
import pytest

from repro.data.strings import document_ids, web_paths


class TestDocumentIds:
    def test_sorted_unique(self):
        ids = document_ids(2_000, seed=1)
        assert len(ids) == 2_000
        assert len(set(ids)) == 2_000
        assert ids == sorted(ids)

    def test_deterministic(self):
        assert document_ids(500, seed=3) == document_ids(500, seed=3)

    def test_format(self):
        ids = document_ids(100, seed=1, shards=64, id_digits=12)
        for doc_id in ids:
            shard, _, suffix = doc_id.partition("-")
            assert shard.isdigit() and suffix.isdigit()
            assert 0 <= int(shard) < 64
            assert len(suffix) == 12

    def test_skewed_shards(self):
        ids = document_ids(5_000, seed=1, shards=32)
        counts = np.zeros(32)
        for doc_id in ids:
            counts[int(doc_id.split("-")[0])] += 1
        # Zipf-ish: the busiest shard holds many times the median.
        assert counts.max() > 4 * max(np.median(counts), 1)

    def test_non_continuous(self):
        ids = document_ids(1_000, seed=1)
        suffixes = sorted(int(d.split("-")[1]) for d in ids if d.startswith("00-"))
        gaps = np.diff(suffixes)
        assert gaps.size == 0 or gaps.max() > 1


class TestWebPaths:
    def test_sorted_unique(self):
        paths = web_paths(1_000, seed=2)
        assert len(paths) == 1_000
        assert len(set(paths)) == 1_000
        assert paths == sorted(paths)

    def test_depth_bounds(self):
        paths = web_paths(500, seed=2, max_depth=3)
        assert all(1 <= p.count("/") + 1 <= 3 for p in paths)

    def test_alphabet(self):
        allowed = set("abcdefghijklmnopqrstuvwxyz0123456789/")
        for p in web_paths(200, seed=2):
            assert set(p) <= allowed

    def test_impossible_request_raises(self):
        # id space of 2 shards x 10 suffixes cannot hold 100 unique ids
        with pytest.raises(RuntimeError):
            document_ids(100, seed=1, shards=2, id_digits=1)
