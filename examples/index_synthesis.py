"""Scenario: automatic index synthesis with LIF.

Section 3.1 of the paper: LIF is "an index synthesis system; given an
index specification, LIF generates different index configurations,
optimizes them, and tests them automatically."  This example runs the
grid search over three very different key distributions and shows how
the winning configuration tracks the data — the paper's core argument
that learned indexes adapt where general-purpose structures cannot.

Run:  python examples/index_synthesis.py
"""

import numpy as np

from repro.core import default_grid, synthesize
from repro.data import integer_dataset, sequential_keys


def synthesize_and_report(name: str, keys: np.ndarray) -> None:
    print(f"\n=== {name} ({keys.size:,} keys) ===")
    grid = default_grid(keys.size, include_nn=True)
    index, best, results = synthesize(
        keys, grid=grid, query_sample=800, train_sample=60_000
    )
    print(f"grid evaluated {len(results)} configurations; winner:")
    print(f"  {best.describe()}")
    ranked = sorted(results, key=lambda r: r.lookup_ns)
    print("top five by lookup latency:")
    for result in ranked[:5]:
        print(f"  {result.describe()}")
    # prove the winner behaves
    probe = int(keys[keys.size // 3])
    assert index.lookup(probe) == int(np.searchsorted(keys, probe))


def main() -> None:
    # A distribution a single multiply learns perfectly (Section 1's
    # motivating example: keys 1..N).
    synthesize_and_report("sequential", sequential_keys(200_000, start=10**6))
    # The paper's easiest and hardest real-data stand-ins.
    synthesize_and_report("maps", integer_dataset("maps", 200_000).keys)
    synthesize_and_report(
        "weblogs", integer_dataset("weblogs", 200_000).keys
    )


if __name__ == "__main__":
    main()
