"""Scenario: racing the index families on one dataset (PR 10).

Four learned indexes answer the same queries over the same sorted key
column through the same engine — the RMI from the paper, a PGM-index
(recursive ε-bounded segments), a RadixSpline (spline knots behind a
radix table), and an ALEX-style gapped array (the writable contender).
Because every family compiles to the engine's flat plan tables and
every result is verified by bounded search, they can only differ in
*speed and size*, never in answers — which this example checks against
``np.searchsorted`` before printing the comparison.

The full dataset × family × workload matrix (with enforced gates)
lives in ``benchmarks/bench_matrix.py``; this is the single-dataset
tour of the same accounting surface.

Run:  PYTHONPATH=src python examples/index_comparison.py [--n 500000]
"""

import argparse
import time

import numpy as np

from repro import (
    GappedArrayIndex,
    PGMIndex,
    RadixSplineIndex,
    RecursiveModelIndex,
)
from repro.bench import Table, factor, format_bytes


def build_families(keys: np.ndarray):
    leaves = max(min(10_000, keys.size // 100), 4)
    yield "RMI (2-stage)", lambda: RecursiveModelIndex(
        keys, stage_sizes=(1, leaves)
    )
    yield "PGM-index", lambda: PGMIndex(keys)
    yield "RadixSpline", lambda: RadixSplineIndex(keys)
    yield "GappedArray", lambda: GappedArrayIndex(keys)


def error_window(index) -> tuple[float, int]:
    model = getattr(index, "_model", index)  # gapped array wraps an RMI
    return float(model.mean_error_window), int(model.max_error_window)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=500_000)
    parser.add_argument("--queries", type=int, default=100_000)
    parser.add_argument("--reps", type=int, default=3)
    args = parser.parse_args()

    rng = np.random.default_rng(7)
    keys = np.sort(rng.integers(0, 1 << 40, args.n, dtype=np.int64))
    queries = np.concatenate([
        rng.choice(keys, args.queries // 2),
        rng.integers(0, 1 << 40, args.queries // 2, dtype=np.int64),
    ])
    rng.shuffle(queries)
    # The gapped array dedups (set semantics); everyone is compared on
    # the multiset positions, the gapped array on the distinct ones.
    distinct = np.unique(keys)

    table = Table(
        f"Index families on {args.n:,} uniform int64 keys "
        f"({args.queries:,} point queries)",
        ["family", "build", "", "size", "window μ/max", "lookups/s", ""],
    )
    baseline_build = baseline_rate = None
    for name, make in build_families(keys):
        start = time.perf_counter()
        index = make()
        build_s = time.perf_counter() - start

        oracle_keys = distinct if isinstance(index, GappedArrayIndex) else keys
        expected = np.searchsorted(oracle_keys, queries, side="left")
        best = float("inf")
        for _ in range(args.reps):
            start = time.perf_counter()
            got = index.lookup_batch(queries)
            best = min(best, time.perf_counter() - start)
        np.testing.assert_array_equal(got, expected)
        rate = queries.size / best

        if baseline_build is None:
            baseline_build, baseline_rate = build_s, rate
        mean_w, max_w = error_window(index)
        table.add_row(
            name,
            f"{build_s * 1e3:.1f} ms",
            factor(build_s, baseline_build),
            format_bytes(index.size_bytes()),
            f"{mean_w:.1f}/{max_w}",
            f"{rate / 1e6:.2f}M",
            factor(rate, baseline_rate),
        )
    table.show()
    print("every family bit-identical to np.searchsorted on"
          f" {queries.size:,} queries (half present, half misses)")


if __name__ == "__main__":
    main()
