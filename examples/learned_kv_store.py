"""Scenario: a read-mostly key-value store with a learned hash function.

Section 4 of the paper: replacing a random hash function with a CDF
model cuts slot conflicts, which for in-array-record maps translates
directly into less wasted memory and fewer chain probes.  This example
builds a product-catalog store (SKU -> payload) both ways and reports
the Appendix B economics.

Run:  python examples/learned_kv_store.py
"""

import time

import numpy as np

from repro.core import LearnedHashFunction, conflict_stats
from repro.data import map_longitudes
from repro.hashmap import SLOT_BYTES, ChainingHashMap, RandomHashFunction


def build_store(keys, values, hash_fn):
    store = ChainingHashMap(keys.size, hash_fn)
    store.insert_batch(keys, values)
    return store


def main() -> None:
    # SKUs behave like map longitudes: clustered ranges with dense runs
    # (vendor prefixes), which is exactly what a CDF model can learn.
    n = 300_000
    skus = map_longitudes(n, seed=23) + 2_000_000_000  # shift positive
    payloads = np.arange(n, dtype=np.int64) * 10 + 7
    print(f"catalog: {n:,} SKUs, 20-byte records, table slots = #records")

    learned_fn = LearnedHashFunction(skus, n, stage_sizes=(1, n // 10))
    random_fn = RandomHashFunction(n, seed=5)

    for name, fn in (("learned CDF hash", learned_fn),
                     ("murmur random hash", random_fn)):
        stats = conflict_stats(fn, skus, n)
        print(f"  {name:>20}: {stats.conflict_rate:6.1%} keys conflict, "
              f"{stats.empty_fraction:6.1%} slots empty")

    learned_store = build_store(skus, payloads, learned_fn)
    random_store = build_store(skus, payloads, random_fn)

    wasted_learned = learned_store.empty_slot_bytes()
    wasted_random = random_store.empty_slot_bytes()
    print(f"\nwasted slot memory: learned {wasted_learned / 1024:.0f} KB vs "
          f"random {wasted_random / 1024:.0f} KB "
          f"({wasted_learned / wasted_random:.2f}x, "
          f"slot = {SLOT_BYTES} bytes)")

    # Read path: point lookups of known SKUs.
    rng = np.random.default_rng(1)
    probes = [int(q) for q in rng.choice(skus, 20_000)]
    for name, store in (("learned", learned_store), ("random", random_store)):
        store.probe_count = 0
        start = time.perf_counter()
        for sku in probes:
            value = store.get(sku)
            assert value is not None
        elapsed = time.perf_counter() - start
        print(f"  {name:>8}: {elapsed / len(probes) * 1e9:6.0f} ns/get, "
              f"{store.probe_count / len(probes):.2f} probes/get")

    # The hash function is a drop-in: misses behave identically.
    assert learned_store.get(1) is None
    assert random_store.get(1) is None
    print("\nmisses return None under both hash functions; "
          "the map architecture is untouched (Section 4.1).")


if __name__ == "__main__":
    main()
