"""Scenario: a secondary index over string document ids.

Section 3.7.2 of the paper: a web-scale product keeps a secondary index
over non-continuous document-id strings.  This example builds the
learned string index (token-vector root + linear leaves + per-leaf
error bounds), turns on the hybrid B-Tree fallback for hard regions,
and serves prefix-range scans — the classic "all documents in shard
17" query.

Run:  python examples/document_catalog.py
"""

import bisect
import time

from repro.btree import GenericBTreeIndex
from repro.core import StringRMI
from repro.data import string_dataset


def main() -> None:
    n = 80_000
    print(f"generating {n:,} document ids...")
    doc_ids = string_dataset(n, seed=17)
    print(f"  e.g. {doc_ids[0]!r} ... {doc_ids[-1]!r}")

    print("building learned string index (MLP root, hybrid threshold 512)...")
    start = time.perf_counter()
    index = StringRMI(
        doc_ids,
        num_leaves=max(n // 100, 16),
        max_length=20,
        hidden=(16,),
        epochs=60,
        hybrid_threshold=512,
        search_strategy="biased_quaternary",
    )
    print(f"  built in {time.perf_counter() - start:.1f}s; "
          f"size {index.size_bytes() / 1024:.0f} KB, "
          f"mean error window {index.mean_error_window:.0f}, "
          f"{index.replaced_leaf_count} leaves fell back to B-Trees")

    btree = GenericBTreeIndex(doc_ids, page_size=128)
    print(f"  string B-Tree baseline: {btree.size_bytes() / 1024:.0f} KB")

    # Point lookups (existence checks).
    assert index.contains(doc_ids[12_345])
    assert not index.contains(doc_ids[12_345] + "!")

    # Prefix scan: every document in shard "17".
    lo = index.lookup("17-")
    hi = index.lookup("17." )  # '.' sorts right after '-'
    shard = doc_ids[lo:hi]
    print(f"\nshard '17' holds {len(shard):,} documents "
          f"(positions {lo:,}..{hi:,})")
    assert all(d.startswith("17-") for d in shard)

    # Range query between two full ids.
    low_key, high_key = doc_ids[40_000], doc_ids[40_050]
    window = index.range_query(low_key, high_key)
    assert window == doc_ids[40_000:40_051]
    print(f"range_query over 51 ids verified against the sorted array")

    # Correctness sweep against bisect, then latency comparison.
    import numpy as np

    rng = np.random.default_rng(2)
    probes = [doc_ids[i] for i in rng.integers(0, n, 5_000)]
    for q in probes[:500]:
        assert index.lookup(q) == bisect.bisect_left(doc_ids, q)
    for name, structure in (("learned", index), ("btree", btree)):
        start = time.perf_counter()
        for q in probes:
            structure.lookup(q)
        print(f"  {name:>8}: "
              f"{(time.perf_counter() - start) / len(probes) * 1e9:6.0f} "
              "ns/lookup")
    print("\nnote: in wall-clock Python the MLP root pays ~10us of numpy "
          "per-op overhead\nthat compiled inference does not (the paper "
          "measures ~500ns for this model);\nsee benchmarks/"
          "bench_fig6_string_dataset.py for the cost-model comparison.")


if __name__ == "__main__":
    main()
