"""Quickstart: a learned range index in a dozen lines.

Builds a two-stage Recursive Model Index over one million synthetic
keys, runs point and range lookups, and compares its size and speed
against a read-optimized B-Tree — the Figure 4 experiment in miniature.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro import BTreeIndex, RecursiveModelIndex
from repro.data import lognormal_keys


def main() -> None:
    # 1M unique integer keys from the paper's lognormal distribution.
    keys = lognormal_keys(1_000_000, seed=7)
    print(f"dataset: {keys.size:,} sorted unique keys "
          f"in [{keys.min():,}, {keys.max():,}]")

    # A learned index: stage 1 routes to one of 1000 linear experts,
    # each expert predicts a position with stored error bounds.
    start = time.perf_counter()
    index = RecursiveModelIndex(keys, stage_sizes=(1, 1_000))
    print(f"built RMI in {time.perf_counter() - start:.2f}s "
          f"({index.size_bytes() / 1024:.0f} KB, "
          f"mean error window {index.mean_error_window:.1f} positions)")

    btree = BTreeIndex(keys, page_size=128)
    print(f"reference B-Tree: {btree.size_bytes() / 1024:.0f} KB")

    # Point lookup: position of the first key >= query (lower bound).
    query = int(keys[123_456])
    position = index.lookup(query)
    assert position == 123_456
    print(f"lookup({query:,}) -> position {position:,}")

    # Absent keys work too — same semantics as numpy searchsorted.
    absent = query + 1
    assert index.lookup(absent) == np.searchsorted(keys, absent)

    # Range query: all keys in [low, high].
    low, high = int(keys[500_000]), int(keys[500_100])
    hits = index.range_query(low, high)
    print(f"range_query({low:,}, {high:,}) -> {hits.size} keys")

    # Speed comparison on 20k random lookups.
    rng = np.random.default_rng(0)
    queries = [float(q) for q in rng.choice(keys, 20_000)]
    for name, structure in (("RMI", index), ("B-Tree", btree)):
        start = time.perf_counter()
        for q in queries:
            structure.lookup(q)
        per_lookup = (time.perf_counter() - start) / len(queries)
        print(f"{name:>7}: {per_lookup * 1e9:7.0f} ns/lookup")

    ratio = btree.size_bytes() / index.size_bytes()
    print(f"\nthe learned index is {ratio:.1f}x smaller than the B-Tree "
          "at better or equal lookup speed.")


if __name__ == "__main__":
    main()
