"""Scenario: a write-heavy key-value store on the learned LSM engine.

Appendix D.1 of the paper sketches the Bigtable-shaped answer to
inserts: buffer writes, merge from time to time, retrain cheaply.
This example runs a session-store workload — a steady stream of
user-session writes mixed with skewed point reads and range scans —
on :class:`repro.lsm.LearnedLSMStore` and shows the three numbers an
LSM trades between:

* write amplification (entries rewritten per entry written),
* read amplification (run probes per lookup, and how many the per-run
  bloom filters eliminate),
* and the shape of the run pyramid the compaction policy maintains.

Run:  python examples/lsm_kv_store.py
"""

import time

import numpy as np

from repro.data import uniform_keys, zipfian_queries
from repro.lsm import LearnedLSMStore


def main() -> None:
    rng = np.random.default_rng(99)
    n = 500_000
    print(f"bootstrapping: {n:,} resident sessions (bulk load, one run)")
    session_ids = uniform_keys(n, seed=99)
    last_seen = rng.integers(1_600_000_000, 1_700_000_000, n)
    store = LearnedLSMStore(
        session_ids, last_seen, memtable_capacity=32_768
    )
    print(f"  {store}\n")

    print("mixed workload: 20 rounds of 10k writes + 40k zipfian reads "
          "+ 1k range scans")
    start = time.perf_counter()
    reads_found = 0
    for _ in range(20):
        # New sessions and touch-updates (values = timestamps).
        writes = rng.integers(0, 2 * int(session_ids.max()), 10_000)
        store.insert_batch(writes, rng.integers(1_700_000_000,
                                                1_800_000_000, 10_000))
        # A few expirations.
        for victim in rng.choice(writes, 50):
            store.delete(int(victim))
        # Skewed point reads: hot sessions dominate.
        queries = zipfian_queries(session_ids, 40_000, seed=7)
        _values, found = store.lookup_batch(queries.astype(np.int64))
        reads_found += int(found.sum())
        # Dashboard-style scans over session-id ranges.
        lows = rng.choice(session_ids, 1_000).astype(np.float64)
        store.range_query_batch(lows, lows + 100_000)
    elapsed = time.perf_counter() - start
    total_ops = 20 * (10_000 + 50 + 40_000 + 1_000)
    print(f"  {total_ops:,} ops in {elapsed:.2f}s "
          f"({total_ops / elapsed:,.0f} ops/s), "
          f"{reads_found:,} point reads hit\n")

    ws, rs = store.write_stats, store.read_stats
    print("the LSM trade-off triangle:")
    print(f"  write amplification: {ws.write_amplification:.2f}x "
          f"({ws.seals} seals, {ws.compactions} compactions)")
    probes_per_lookup = rs.run_probes / max(rs.lookups, 1)
    print(f"  read amplification:  {probes_per_lookup:.2f} run probes "
          f"per lookup across {store.num_runs} runs")
    print(f"  bloom guards:        {rs.negative_probes_eliminated:.1%} "
          f"of negative-run probes eliminated "
          f"({rs.bloom_rejects:,} rejects vs {rs.probe_misses:,} "
          f"false probes)")
    print(f"  run pyramid:         "
          f"{[len(r) for r in store.runs]}")

    print("\nforcing a full compaction (tombstone GC + single run):")
    start = time.perf_counter()
    store.compact()
    print(f"  compacted to {store.runs[0].keys.size:,} live entries "
          f"in {time.perf_counter() - start:.2f}s; {store}")


if __name__ == "__main__":
    main()
