"""Scenario: time-range analytics over web-server logs.

The paper motivates learned range indexes with exactly this workload —
"retrieve all records in a certain time frame" over an in-memory
analytics store (Section 1/2).  This example builds a read-only log
store keyed by request timestamp, uses LIF to synthesize the best RMI
for the observed distribution, and answers dashboard-style questions:

* how many requests in a given hour / day,
* p50/p99 inter-arrival gaps inside a window,
* busiest hour of the simulated trace.

Run:  python examples/weblog_analytics.py
"""

import time

import numpy as np

from repro.core import RMIConfig, synthesize
from repro.data import weblog_timestamps
from repro.data.weblogs import PAPER_TICKS_PER_KEY


class LogStore:
    """A read-only, timestamp-ordered request log with a learned index."""

    def __init__(self, timestamps: np.ndarray):
        self.timestamps = timestamps
        grid = [
            RMIConfig(num_leaves=max(timestamps.size // 2_000, 8)),
            RMIConfig(num_leaves=max(timestamps.size // 500, 8)),
            RMIConfig(
                root_kind="multivariate",
                root_features=("key", "log"),
                num_leaves=max(timestamps.size // 1_000, 8),
            ),
        ]
        self.index, self.chosen, self.candidates = synthesize(
            timestamps, grid=grid, query_sample=1_000
        )

    def count_between(self, start: int, end: int) -> int:
        lo = self.index.lookup(float(start))
        hi = self.index.lookup(float(end))
        return hi - lo

    def window(self, start: int, end: int) -> np.ndarray:
        lo = self.index.lookup(float(start))
        hi = self.index.lookup(float(end))
        return self.timestamps[lo:hi]


def main() -> None:
    n = 500_000
    print(f"simulating {n:,} unique request timestamps "
          "(university web server, 2 years)...")
    timestamps = weblog_timestamps(n, seed=11)
    ticks_per_hour = int(3_600 * n * PAPER_TICKS_PER_KEY / (2 * 365 * 86_400))

    store = LogStore(timestamps)
    print(f"LIF chose: {store.chosen.config.describe()} "
          f"({store.chosen.size_bytes / 1024:.0f} KB, "
          f"{store.chosen.lookup_ns:.0f} ns/lookup)")
    print("candidates considered:")
    for candidate in store.candidates:
        print(f"  {candidate.describe()}")

    # Dashboard query 1: requests per day over one simulated week.
    day = ticks_per_hour * 24
    week_start = int(timestamps[n // 2])
    print("\nrequests per day (one week mid-trace):")
    for d in range(7):
        count = store.count_between(week_start + d * day, week_start + (d + 1) * day)
        print(f"  day {d}: {count:7,} requests " + "#" * (count * 40 // max(n // 100, 1)))

    # Dashboard query 2: busiest hour in that week.
    busiest = max(
        range(7 * 24),
        key=lambda h: store.count_between(
            week_start + h * ticks_per_hour, week_start + (h + 1) * ticks_per_hour
        ),
    )
    print(f"\nbusiest hour of that week: hour {busiest % 24:02d} "
          f"on day {busiest // 24}")

    # Dashboard query 3: tail latency of inter-arrival gaps in a window.
    sample = store.window(week_start, week_start + day)
    if sample.size > 1:
        gaps = np.diff(sample)
        print(f"inter-arrival gaps that day: p50={np.percentile(gaps, 50):.0f} "
              f"p99={np.percentile(gaps, 99):.0f} ticks")

    # Throughput of the whole pipeline.
    rng = np.random.default_rng(3)
    windows = rng.choice(timestamps, size=(2_000, 1))
    start = time.perf_counter()
    total = 0
    for (w,) in windows:
        total += store.count_between(int(w), int(w) + ticks_per_hour)
    elapsed = time.perf_counter() - start
    print(f"\n{len(windows):,} hourly-count queries in {elapsed:.2f}s "
          f"({elapsed / len(windows) * 1e6:.0f} us/query); "
          f"mean count {total / len(windows):.0f}")


if __name__ == "__main__":
    main()
