"""Scenario: a learned index under a streaming write workload.

Appendix D.1 of the paper discusses inserts: append-heavy workloads
(e.g. timestamp keys) can be O(1) for a learned index because the model
generalizes to the future, while out-of-distribution inserts require
retraining — "all inserts are kept in buffer and from time to time
merged", the Bigtable delta-index pattern.

This example streams two workloads into :class:`WritableLearnedIndex`:

1. **appends** — new timestamps continuing the learned pattern: merges
   take the O(append) fast path, zero retrains;
2. **random inserts** — keys landing anywhere: merges retrain (cheap,
   closed-form leaves).

It also demos the Section 7 "Beyond Indexing" sketch: sorting the
incoming batch with a learned CDF partition + insertion repair.

Run:  python examples/streaming_inserts.py
"""

import time

import numpy as np

from repro.core import WritableLearnedIndex, learned_sort
from repro.data import lognormal_keys


def stream(index, batches, label):
    start = time.perf_counter()
    retrains_before = index.retrains
    fast_before = index.fast_appends
    for batch in batches:
        index.insert_batch(batch)
    index.merge()
    elapsed = time.perf_counter() - start
    total = sum(len(b) for b in batches)
    print(f"  {label}: {total:,} inserts in {elapsed:.2f}s "
          f"({elapsed / total * 1e6:.1f} us/insert), "
          f"retrains={index.retrains - retrains_before}, "
          f"fast appends={index.fast_appends - fast_before}")


def main() -> None:
    base = np.arange(0, 2_000_000, 4, dtype=np.int64)  # timestamp-ish keys
    index = WritableLearnedIndex(
        base, stage_sizes=(1, 500), merge_threshold=5_000
    )
    print(f"base index: {len(index):,} keys, {index.size_bytes() / 1024:.0f} KB")

    # Workload 1: appends continuing the pattern (future timestamps).
    appends = [
        np.arange(2_000_000 + i * 40_000, 2_000_000 + (i + 1) * 40_000, 4)
        for i in range(5)
    ]
    stream(index, appends, "append stream ")
    assert index.contains(2_000_000 + 8)

    # Workload 2: random inserts into the middle of the key space.
    rng = np.random.default_rng(9)
    random_batches = [
        rng.integers(1, 2_000_000, size=6_000) | 1  # odd => all new
        for _ in range(3)
    ]
    stream(index, random_batches, "random inserts")
    probe = int(random_batches[0][0])
    assert index.contains(probe)

    # Deletes fold in as tombstones.
    index.delete(int(base[1234]))
    assert not index.contains(int(base[1234]))
    print(f"  after deletes: {index!r}")

    # Bonus: learned sort of an incoming unsorted batch (Section 7).
    batch = lognormal_keys(200_000, seed=41).astype(np.float64)
    rng.shuffle(batch)
    start = time.perf_counter()
    ordered, stats = learned_sort(batch, return_stats=True)
    learned_s = time.perf_counter() - start
    start = time.perf_counter()
    reference = np.sort(batch)
    numpy_s = time.perf_counter() - start
    assert np.array_equal(ordered, reference)
    print(f"\nlearned sort: {len(batch):,} keys in {learned_s:.2f}s "
          f"(model partition left {stats.displacement_per_key:.2f} "
          f"shifts/key for the repair pass; numpy C quicksort: {numpy_s:.2f}s)")


if __name__ == "__main__":
    main()
