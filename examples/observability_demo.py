"""Scenario: tracing one request across processes (PR 9).

Telemetry is off by default — the serving stack pays one attribute
check per instrumented site.  This example switches it on, drives a
few coalesced lookups and a sealing write batch through a
``ShardedLSMStore``, and then prints what the obs core collected:

* one exported JSON trace in which the client's coalescer tick and
  shard fanout appear next to the *worker processes'* spans (store
  lookup, WAL append, seal, shared-memory republish), joined by the
  trace id that rode the pipe RPC;
* the merged Prometheus-format metrics — every worker's registry
  deltas piggybacked home on command acks and vector-added into one
  exact aggregate.

Run:  python examples/observability_demo.py
"""

import asyncio
import tempfile

import numpy as np

from repro import obs
from repro.serving import CoalescingIndexServer, ShardedLSMStore


def drive(store: ShardedLSMStore, keys: np.ndarray) -> None:
    async def run() -> None:
        server = CoalescingIndexServer(store)
        got = await asyncio.gather(
            *(server.lookup(int(k)) for k in keys[:12])
        )
        assert got == [int(k) for k in keys[:12]]

    asyncio.run(run())


def main() -> None:
    obs.set_enabled(True)
    obs.set_process_name("client")
    keys = np.arange(0, 50_000, dtype=np.int64)

    with tempfile.TemporaryDirectory() as tmp:
        store = ShardedLSMStore(
            2,
            keys,
            path=tmp,
            read_via="worker",
            store_kwargs={"memtable_capacity": 512},
        )
        try:
            drive(store, keys)
            # Enough new keys to roll the 512-entry memtables: the
            # write trace picks up WAL appends, a seal, and the
            # shared-memory republish inside each worker.
            with obs.trace_scope() as write_trace:
                store.insert_batch(
                    np.arange(100_000, 101_000, dtype=np.int64)
                )

            read_trace = next(
                s["trace_id"]
                for s in obs.all_spans()
                if s["name"] == "serving.request"
            )
            print("=== one read request, across processes ===")
            print(obs.trace_json(obs.export_trace(read_trace)))
            print()
            print("=== one write batch, across processes ===")
            print(obs.trace_json(obs.export_trace(write_trace)))
            print()
            print("=== merged metrics (client + every shard) ===")
            print(obs.prometheus_text(store.metrics().merged))
        finally:
            store.close()


if __name__ == "__main__":
    main()
