"""Scenario: a crash-safe key-value store that survives kill -9.

The PR 6 durability layer turns :class:`repro.lsm.LearnedLSMStore`
into a database: every acknowledged write is fsynced into a
write-ahead log before the call returns, seals and compactions publish
checksummed run files under an atomically swapped manifest, and
reopening the directory recovers exactly the acknowledged state — no
matter where the process died.

This example walks the full lifecycle:

1. build a durable store and load an order ledger into it;
2. simulate a kill -9 with writes still buffered (no close, no flush)
   and show the WAL replaying them on reopen;
3. show the cold reopen being O(metadata) — million-key run files are
   memmapped lazily, not read — and the first query paying the
   materialization cost exactly once;
4. flip one byte in a run file and show the checksum layer refusing to
   answer rather than answering wrong.

Run:  python examples/lsm_persistent_store.py
"""

import os
import shutil
import tempfile
import time

import numpy as np

from repro.lsm import (
    CorruptRunError,
    LearnedLSMStore,
    RealFileSystem,
    flip_byte,
    load_manifest,
)


def main() -> None:
    rng = np.random.default_rng(6)
    directory = tempfile.mkdtemp(prefix="learned-lsm-")
    print(f"durable store at {directory}\n")

    # -- 1. load a ledger ----------------------------------------------------
    n = 1_000_000
    order_ids = np.unique(rng.integers(0, 1 << 48, n, dtype=np.int64))
    amounts = rng.integers(100, 1_000_000, order_ids.size, dtype=np.int64)
    print(f"writing {order_ids.size:,} orders (fsync-per-batch WAL on)")
    start = time.perf_counter()
    store = LearnedLSMStore(path=directory, memtable_capacity=65_536)
    for lo in range(0, order_ids.size, 65_536):
        store.insert_batch(order_ids[lo:lo + 65_536], amounts[lo:lo + 65_536])
    store.compact()
    print(f"  loaded + compacted in {time.perf_counter() - start:.2f}s; "
          f"{store}")

    # -- 2. kill -9 with buffered writes -------------------------------------
    late_ids = rng.integers(1 << 48, 1 << 49, 10_000, dtype=np.int64)
    late_amounts = rng.integers(100, 1_000_000, 10_000, dtype=np.int64)
    store.insert_batch(late_ids, late_amounts)
    refunded = order_ids[:500]
    store.delete_batch(refunded)
    print(f"\n10,000 late orders + 500 refunds acknowledged, then... "
          f"kill -9 (no close, no flush)")
    del store  # the WAL is now the only record of the buffered tail

    start = time.perf_counter()
    store = LearnedLSMStore(path=directory)
    print(f"  reopened in {(time.perf_counter() - start) * 1e3:.1f}ms: "
          f"replayed {store.recovered_wal_records} WAL records, "
          f"runs lazy: {all(r.is_loaded_lazy() for r in store.runs)}")
    values, found = store.lookup_batch(late_ids)
    assert found.all() and np.array_equal(values, late_amounts)
    assert not store.contains_batch(refunded).any()
    print("  every acknowledged write survived; every refund held")

    # -- 3. cold reopen is O(metadata) ---------------------------------------
    store.close()
    start = time.perf_counter()
    with LearnedLSMStore(path=directory) as cold:
        reopen_ms = (time.perf_counter() - start) * 1e3
        lazy = all(r.is_loaded_lazy() for r in cold.runs)
        start = time.perf_counter()
        sample = rng.choice(order_ids[500:], 50_000)
        _, found = cold.lookup_batch(sample)
        query_ms = (time.perf_counter() - start) * 1e3
        print(f"\ncold reopen of {len(cold):,} live keys: {reopen_ms:.1f}ms "
              f"(lazy={lazy}); first 50k-query batch: {query_ms:.1f}ms "
              f"({int(found.sum()):,} hits)")

    # -- 4. corruption is detected, never served -----------------------------
    state = load_manifest(RealFileSystem(), directory)
    run_file = os.path.join(directory, state["runs"][0]["file"])
    flip_byte(run_file, os.path.getsize(run_file) // 2)
    print(f"\nflipped one byte in {os.path.basename(run_file)}")
    with LearnedLSMStore(path=directory) as damaged:
        try:
            damaged.lookup_batch(sample)
            print("  BUG: corrupt data answered a query")
        except CorruptRunError as exc:
            print(f"  query refused: {type(exc).__name__}: {exc}")

    shutil.rmtree(directory)
    print("\n(demo directory removed)")


if __name__ == "__main__":
    main()
