"""Scenario: a phishing-URL blacklist as a learned existence index.

Section 5.2 of the paper: a browser needs "is this URL blacklisted?"
with zero false negatives and minimal memory.  This example trains the
paper's character-level GRU on blacklisted vs legitimate URLs, wraps it
in the classifier + overflow-filter construction, and compares memory
with a standard Bloom filter at the same measured FPR.

Run:  python examples/phishing_blacklist.py
"""

import time

import numpy as np

from repro.bloom import BloomFilter
from repro.core import LearnedBloomFilter
from repro.data import url_dataset
from repro.models import GRUClassifier


def main() -> None:
    n = 30_000
    print(f"generating {n:,} blacklisted and {n:,} legitimate URLs...")
    blacklist, legitimate = url_dataset(n, n, seed=31)
    third = len(legitimate) // 3
    train_negatives = legitimate[:third]
    validation = legitimate[third:2 * third]
    live_traffic = legitimate[2 * third:]

    print("training a 16-unit character GRU (32-dim embeddings)...")
    model = GRUClassifier(width=16, embedding_dim=32, max_length=48, seed=0)
    labels = np.array([1.0] * len(blacklist) + [0.0] * len(train_negatives))
    start = time.perf_counter()
    model.fit(blacklist + train_negatives, labels,
              epochs=3, batch_size=256, learning_rate=5e-3)
    print(f"  trained in {time.perf_counter() - start:.0f}s; "
          f"model = {model.size_bytes() / 1024:.1f} KB (float32)")

    # Tight FPR targets are where the learned filter shines: the
    # standard filter's size grows with -log(FPR) while the model is a
    # fixed cost (Figure 10).
    target_fpr = 0.001
    learned = LearnedBloomFilter(model, blacklist, validation,
                                 target_fpr=target_fpr)
    plain = BloomFilter.for_capacity(len(blacklist), target_fpr)
    plain.add_batch(blacklist)

    print(f"\ntarget overall FPR: {target_fpr:.1%}")
    print(f"  classifier threshold tau = {learned.tau:.4f} "
          f"(false-negative rate {learned.false_negative_rate:.1%} "
          "-> that slice lives in the overflow filter)")

    # The existence-index contract: NO false negatives, ever.
    missed = sum(1 for url in blacklist if url not in learned)
    print(f"  blacklisted URLs missed: {missed} (must be 0)")
    assert missed == 0

    learned_fpr = learned.measured_fpr(live_traffic)
    plain_fpr = plain.measured_fpr(live_traffic)
    print(f"  measured FPR on live traffic: learned {learned_fpr:.3%}, "
          f"standard {plain_fpr:.3%}")

    saving = 1 - learned.size_bytes() / plain.size_bytes()
    print(f"  memory: learned {learned.size_bytes() / 1024:.1f} KB vs "
          f"standard {plain.size_bytes() / 1024:.1f} KB "
          f"({saving:+.0%})")

    # Per-query cost (the paper: acceptable because existence indexes
    # guard cold storage, where a miss costs milliseconds anyway).
    start = time.perf_counter()
    for url in live_traffic[:2_000]:
        _ = url in learned
    per_query = (time.perf_counter() - start) / 2_000
    print(f"  query cost: {per_query * 1e6:.0f} us "
          "(vs a disk seek the filter avoids: ~10,000 us)")


if __name__ == "__main__":
    main()
