"""Scenario: a serving front end over the learned LSM store.

A real service does not receive tidy 100k-key batches — it receives
streams of single lookups from many concurrent clients.  This example
runs the two PR 8 serving pieces end to end: the
``CoalescingIndexServer`` gathers concurrent awaited requests into one
vectorized store call per event-loop tick, and the ``ShardedLSMStore``
spreads the keyspace across worker processes along the learned CDF,
serving local reads from shared-memory views and pinning cross-shard
snapshots while writes land.

Run:  python examples/serving_demo.py
"""

import asyncio
import time

import numpy as np

from repro.lsm import LearnedLSMStore
from repro.serving import CoalescingIndexServer, ShardedLSMStore


def coalescing_demo(keys: np.ndarray) -> None:
    store = LearnedLSMStore(keys, keys * 10, background=False)
    clients, ops = 16, 200

    async def client(srv, c):
        hits = 0
        for i in range(ops):
            key = int(keys[(c * 7919 + i * 104729) % keys.size])
            if await srv.lookup(key) is not None:
                hits += 1
        return hits

    async def run():
        srv = CoalescingIndexServer(store)
        start = time.perf_counter()
        hits = await asyncio.gather(
            *(client(srv, c) for c in range(clients))
        )
        elapsed = time.perf_counter() - start
        return sum(hits), elapsed, srv.stats

    hits, elapsed, stats = asyncio.run(run())
    total = clients * ops
    print(f"{clients} clients x {ops} single-key lookups "
          f"({hits}/{total} hits) in {elapsed * 1e3:.0f}ms")
    print(f"  {stats.store_calls} store calls for "
          f"{stats.requests_served} requests — "
          f"mean batch {stats.mean_point_batch():.1f} keys/tick, "
          f"{total / elapsed:,.0f} ops/s")
    store.close()


def sharding_demo(keys: np.ndarray) -> None:
    with ShardedLSMStore(4, keys, keys * 10) as store:
        print(f"  {store!r}")
        for shard, stat in enumerate(store.shard_stats()):
            print(f"  shard {shard}: {stat['live_keys']:,} keys, "
                  f"{stat['num_runs']} runs")

        probe = keys[:: keys.size // 50_000 or 1]
        values, found = store.lookup_batch(probe)  # zero-copy local read
        assert found.all() and np.array_equal(values, probe * 10)
        print(f"  {probe.size:,} shared-memory reads verified")

        # A pinned snapshot keeps answering from its epoch while an
        # overwrite lands in every shard.
        with store.snapshot() as snap:
            store.insert_batch(keys[:1000], keys[:1000] * 99)
            store.flush()
            old, _ = snap.lookup_batch(keys[:1000])
            new, _ = store.lookup_batch(keys[:1000])
        print(f"  snapshot still reads x10 values ({old[0]}), "
              f"live store reads x99 ({new[0]})")


def main() -> None:
    rng = np.random.default_rng(18)
    keys = np.unique(rng.integers(0, 1 << 62, 200_000, dtype=np.int64))

    print("-- request coalescing (asyncio) --")
    coalescing_demo(keys)

    print("\n-- sharded store (4 worker processes) --")
    sharding_demo(keys)


if __name__ == "__main__":
    main()
